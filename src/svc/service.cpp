#include "svc/service.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <limits>
#include <map>

#include "core/stream_io.hpp"
#include "obs/trace.hpp"
#include "svc/replication.hpp"
#include "util/thread_pool.hpp"

namespace wormrt::svc {

namespace {

/// Required integer field helper: writes into \p out, or returns false.
bool req_int(const Json& request, const char* key, std::int64_t* out) {
  const Json* v = request.get(key);
  if (v == nullptr || !v->is_number()) {
    return false;
  }
  *out = v->as_int();
  return true;
}

double now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Service::Metrics::Metrics(obs::Registry& reg)
    : requests(reg.counter("wormrt_requests_total", {{"verb", "REQUEST"}},
                           "Protocol verbs served, by verb.")),
      removes(reg.counter("wormrt_requests_total", {{"verb", "REMOVE"}})),
      queries(reg.counter("wormrt_requests_total", {{"verb", "QUERY"}})),
      explains(reg.counter("wormrt_requests_total", {{"verb", "EXPLAIN"}})),
      snapshots(reg.counter("wormrt_requests_total", {{"verb", "SNAPSHOT"}})),
      stats(reg.counter("wormrt_requests_total", {{"verb", "STATS"}})),
      metrics(reg.counter("wormrt_requests_total", {{"verb", "METRICS"}})),
      link_downs(reg.counter("wormrt_requests_total", {{"verb", "LINK_DOWN"}})),
      link_ups(reg.counter("wormrt_requests_total", {{"verb", "LINK_UP"}})),
      reports(reg.counter("wormrt_requests_total", {{"verb", "REPORT"}})),
      healths(reg.counter("wormrt_requests_total", {{"verb", "HEALTH"}})),
      histories(reg.counter("wormrt_requests_total", {{"verb", "HISTORY"}})),
      link_evicted(reg.counter(
          "wormrt_link_streams_total", {{"outcome", "evicted"}},
          "Established streams hit by LINK_DOWN, by outcome.")),
      link_rerouted(
          reg.counter("wormrt_link_streams_total", {{"outcome", "rerouted"}})),
      admitted(reg.counter("wormrt_admission_decisions_total",
                           {{"decision", "admitted"}},
                           "Admission decisions, by outcome.")),
      rejected(reg.counter("wormrt_admission_decisions_total",
                           {{"decision", "rejected"}})),
      errors(reg.counter("wormrt_errors_total", {},
                         "Error replies sent (bad json, bad verb, bad "
                         "arguments, internal errors).")),
      latency_us(reg.histogram(
          // 10µs buckets: coarse 100µs buckets flattened the p99/p999
          // split the dispatch pipeline actually has (DESIGN.md §14).
          "wormrt_admission_latency_us", 0.0, 5000.0, 500, {},
          "REQUEST verb service time in microseconds (the admission "
          "decision, including the trial analysis).")),
      population(reg.gauge("wormrt_population", {},
                           "Established channels currently admitted.")) {}

Service::Service(topo::Topology& topo, const route::RoutingAlgorithm& routing,
                 core::AnalysisConfig config, ServiceOptions options)
    : topo_(topo),
      options_(std::move(options)),
      ctrl_(topo, routing, config),
      metrics_(registry_),
      conformance_(registry_),
      channel_gauge_live_(topo.num_channels(), 0),
      sampler_(options_.history_capacity) {
  follower_.store(options_.follower, std::memory_order_release);
  setup_sampler();
  if (options_.sample_interval_ms > 0) {
    sampler_.start(options_.sample_interval_ms);
  }
}

Service::~Service() = default;

void Service::setup_sampler() {
  // Probes run on the sampler thread.  They read independently
  // synchronised state (atomic counters, sharded histograms, the
  // conformance monitor, ThreadPool stats) — the one exception takes
  // mu_ briefly for the engine's plain-struct work counters, which at
  // sampling cadence is noise (gated by the svc_churn obs-overhead
  // floor, BENCH_obs.json).
  sampler_.add_series("requests_total", [this] {
    return static_cast<double>(metrics_.requests.value());
  });
  sampler_.add_series("admission_p99_us",
                      [this] { return metrics_.latency_us.p99(); });
  sampler_.add_series("fsync_p99_us", [this] {
    return registry_
        .histogram("wormrt_journal_fsync_us", 0.0, 50000.0, 1000, {})
        .p99();
  });
  sampler_.add_series("sheds_total", [this] {
    double total = 0.0;
    for (const char* reason : {"overloaded", "line_too_long", "idle_timeout"}) {
      total += static_cast<double>(
          registry_.counter("wormrt_server_sheds_total", {{"reason", reason}})
              .value());
    }
    return total;
  });
  sampler_.add_series("dirty_marked_total", [this] {
    std::lock_guard<std::mutex> lk(mu_);
    return static_cast<double>(ctrl_.engine().stats().dirty_marked);
  });
  sampler_.add_series("violations_total", [this] {
    return static_cast<double>(conformance_.total_violations());
  });
  sampler_.add_series("population", [this] {
    return metrics_.population.value();
  });
  sampler_.add_series("threadpool_queue_depth", [] {
    return static_cast<double>(util::ThreadPool::shared().stats().queue_depth);
  });
  sampler_.add_series("replication_lag", [this] {
    std::lock_guard<std::mutex> lk(mu_);
    if (journal_ == nullptr) {
      return 0.0;
    }
    const std::uint64_t local = journal_->durable_lsn();
    if (follower_.load(std::memory_order_acquire)) {
      const std::uint64_t primary =
          replica_primary_durable_.load(std::memory_order_relaxed);
      return primary > local ? static_cast<double>(primary - local) : 0.0;
    }
    if (repl_ == nullptr || repl_->followers().empty()) {
      return 0.0;
    }
    const std::uint64_t acked = repl_->max_follower_durable();
    return local > acked ? static_cast<double>(local - acked) : 0.0;
  });
}

void Service::flush_observability() {
  sampler_.stop();
  if (audit_ != nullptr) {
    audit_->flush();
  }
}

bool Service::open_state(std::string* error) {
  if (!options_.audit_path.empty() && audit_ == nullptr) {
    auto audit =
        std::make_unique<AuditLog>(options_.audit_path,
                                   options_.audit_max_bytes);
    if (!audit->open(error)) {
      return false;
    }
    audit_ = std::move(audit);
  }
  if (options_.state_dir.empty()) {
    return true;
  }
  std::lock_guard<std::mutex> lk(mu_);
  journal_ = std::make_unique<Journal>(
      JournalConfig{options_.state_dir, options_.journal_fsync,
                    options_.journal_faults, topo_.fingerprint(),
                    options_.repl_min_epoch, options_.repl_fence_lsn},
      &registry_);
  RecoveredState state;
  if (!journal_->open(&state, error)) {
    journal_.reset();
    return false;
  }

  // Replay: snapshot fault flags first (paths with non-primary route
  // orders exist only because of them), then the snapshot population in
  // engine order, then the post-snapshot mutations in append order.
  // Each restore() forces the journaled handle and route order, so
  // population order, paths, AND handle numbering come out exactly as
  // the crashed daemon left them — without consulting fault state.
  for (const auto& [src, dst] : state.faulted) {
    const topo::ChannelId ch = topo_.channel_between(
        static_cast<topo::NodeId>(src), static_cast<topo::NodeId>(dst));
    if (ch == topo::kNoChannel) {
      // The fingerprint check upstream makes this unreachable; a hit
      // means the snapshot and the fabric disagree — refuse to guess.
      *error = options_.state_dir + ": snapshot faults channel " +
               std::to_string(src) + "->" + std::to_string(dst) +
               " which this topology does not have";
      journal_.reset();
      return false;
    }
    topo_.set_channel_faulted(ch, true);
    ++recovery_.topology_mutations;
  }
  const auto restore = [this](const JournalEntry& e) {
    ctrl_.restore(static_cast<topo::NodeId>(e.src),
                  static_cast<topo::NodeId>(e.dst),
                  static_cast<Priority>(e.priority), e.period, e.length,
                  e.deadline, e.handle, static_cast<int>(e.route_order));
  };
  for (const JournalEntry& e : state.snapshot) {
    restore(e);
  }
  for (const JournalRecord& rec : state.records) {
    switch (rec.type) {
      case JournalRecord::Type::kAdd:
        restore(rec.entry);
        break;
      case JournalRecord::Type::kRemove:
        ctrl_.remove(rec.entry.handle);
        break;
      case JournalRecord::Type::kLinkDown:
      case JournalRecord::Type::kLinkUp: {
        const topo::ChannelId ch =
            topo_.channel_between(static_cast<topo::NodeId>(rec.entry.src),
                                  static_cast<topo::NodeId>(rec.entry.dst));
        if (ch == topo::kNoChannel) {
          *error = options_.state_dir + ": journal mutates channel " +
                   std::to_string(rec.entry.src) + "->" +
                   std::to_string(rec.entry.dst) +
                   " which this topology does not have";
          journal_.reset();
          return false;
        }
        // The cascade (evict / reroute / recompute) is deterministic
        // given the engine state, so replaying the one record redoes it
        // bit for bit.
        if (rec.type == JournalRecord::Type::kLinkDown) {
          ctrl_.link_down(ch);
        } else {
          ctrl_.link_up(ch);
        }
        ++recovery_.topology_mutations;
        break;
      }
    }
  }
  // Replayed adds advance next_handle past their own handles; the
  // snapshot's next_handle additionally covers handles freed by
  // removals above the surviving maximum.
  ctrl_.set_next_handle(std::max(ctrl_.next_handle(), state.next_handle));

  recovery_.snapshot_entries = state.snapshot.size();
  recovery_.journal_records = state.records.size();
  recovery_.skipped_records = state.skipped_records;
  recovery_.discarded_bytes = state.discarded_bytes;
  metrics_.population.set(static_cast<double>(ctrl_.size()));
  if (!options_.follower) {
    // Primary: serve followers from an in-memory buffer whose floor is
    // everything already on disk (those records ship via snapshot).
    repl_ = std::make_unique<Replicator>(journal_->durable_lsn(),
                                         options_.repl_buffer_records);
  }
  return true;
}

void Service::capture_state_locked(
    std::vector<JournalEntry>* entries,
    std::vector<std::pair<std::int64_t, std::int64_t>>* faulted) const {
  const core::IncrementalAnalyzer& engine = ctrl_.engine();
  const core::StreamSet& streams = engine.streams();
  entries->clear();
  entries->reserve(streams.size());
  for (std::size_t i = 0; i < streams.size(); ++i) {
    const auto id = static_cast<StreamId>(i);
    const core::MessageStream& s = streams[id];
    JournalEntry e;
    e.handle = engine.handle_of(id);
    e.src = s.src;
    e.dst = s.dst;
    e.priority = s.priority;
    e.period = s.period;
    e.length = s.length;
    e.deadline = s.deadline;
    e.route_order = s.route_order;
    entries->push_back(e);
  }
  faulted->clear();
  const topo::ChannelGraph& channels = topo_.channels();
  for (std::size_t i = 0; i < channels.size(); ++i) {
    const auto id = static_cast<topo::ChannelId>(i);
    if (channels.is_faulted(id)) {
      const topo::Channel& ch = channels.channel(id);
      faulted->emplace_back(ch.src, ch.dst);
    }
  }
}

void Service::maybe_compact() {
  if (journal_ == nullptr ||
      journal_->appends_since_snapshot() < options_.compact_every) {
    return;
  }
  std::vector<JournalEntry> entries;
  std::vector<std::pair<std::int64_t, std::int64_t>> faulted;
  capture_state_locked(&entries, &faulted);
  std::string err;
  if (!journal_->write_snapshot(ctrl_.next_handle(), entries, faulted, &err)) {
    registry_
        .counter("wormrt_journal_compaction_failures_total", {},
                 "Snapshot compactions that failed (journal kept intact).")
        .inc();
  }
}

std::size_t Service::population() const {
  std::lock_guard<std::mutex> lk(mu_);
  return ctrl_.size();
}

void Service::refresh_mirrors() const {
  const util::ThreadPool::Stats pool = util::ThreadPool::shared().stats();
  registry_
      .gauge("wormrt_threadpool_workers", {},
             "Worker threads of the shared analysis pool.")
      .set(static_cast<double>(pool.workers));
  registry_
      .gauge("wormrt_threadpool_queue_depth", {},
             "Tasks waiting in the shared pool's queue right now.")
      .set(static_cast<double>(pool.queue_depth));
  registry_
      .counter("wormrt_threadpool_tasks_submitted_total", {},
               "Tasks ever submitted to the shared pool.")
      .mirror(pool.tasks_submitted);
  registry_
      .counter("wormrt_threadpool_tasks_executed_total", {},
               "Tasks the shared pool's workers completed.")
      .mirror(pool.tasks_executed);
  registry_
      .counter("wormrt_threadpool_busy_micros_total", {},
               "Wall time workers spent inside tasks, microseconds.")
      .mirror(pool.busy_micros);

  const core::IncrementalAnalyzer::Stats& es = ctrl_.engine().stats();
  registry_
      .counter("wormrt_engine_adds_total", {},
               "Stream additions the incremental engine performed.")
      .mirror(es.adds);
  registry_
      .counter("wormrt_engine_removes_total", {},
               "Stream removals the incremental engine performed.")
      .mirror(es.removes);
  registry_
      .counter("wormrt_engine_bound_recomputes_total", {},
               "Cal_U evaluations (dirty-set recomputations).")
      .mirror(es.bound_recomputes);
  registry_
      .counter("wormrt_engine_dirty_marked_total", {},
               "Established streams marked dirty across mutations.")
      .mirror(es.dirty_marked);
  registry_
      .counter("wormrt_engine_edge_updates_total", {},
               "Direct-blocking edges inserted or erased.")
      .mirror(es.edge_updates);
  registry_
      .counter("wormrt_engine_bound_cache_hits_total", {},
               "Bound lookups served from the cache with no re-analysis.")
      .mirror(es.bound_cache_hits);

  // Channel heatmap gauges, from the engine's maintained channel index.
  // Children are registered lazily on first occupancy and re-zeroed
  // once live, so an emptied channel never freezes at its last value.
  const core::IncrementalAnalyzer& engine = ctrl_.engine();
  for (std::size_t c = 0; c < static_cast<std::size_t>(topo_.num_channels());
       ++c) {
    const auto ch = static_cast<topo::ChannelId>(c);
    const std::vector<core::AdmissionController::Handle> on =
        engine.handles_on_channel(ch);
    if (on.empty() && channel_gauge_live_[c] == 0) {
      continue;
    }
    channel_gauge_live_[c] = 1;
    double util = 0.0;
    for (const auto h : on) {
      const core::MessageStream* s = engine.find(h);
      if (s != nullptr && s->period > 0) {
        util += static_cast<double>(s->length) /
                static_cast<double>(s->period);
      }
    }
    const obs::Labels labels = {{"channel", std::to_string(c)}};
    registry_
        .gauge("wormrt_channel_streams", labels,
               "Established streams crossing each directed channel "
               "(children appear once a channel is first occupied).")
        .set(static_cast<double>(on.size()));
    registry_
        .gauge("wormrt_channel_utilization", labels,
               "Sum of length/period over the streams crossing each "
               "directed channel.")
        .set(util);
  }

  // Conformance: drop records of departed streams, then mirror sizes.
  std::vector<std::int64_t> live;
  live.reserve(engine.size());
  for (std::size_t i = 0; i < engine.size(); ++i) {
    live.push_back(engine.handle_of(static_cast<StreamId>(i)));
  }
  conformance_.retain(live);
  registry_
      .gauge("wormrt_conformance_tracked_streams", {},
             "Streams with at least one reported latency observation.")
      .set(static_cast<double>(conformance_.size()));

  if (audit_ != nullptr) {
    registry_
        .counter("wormrt_audit_write_failures_total", {},
                 "Audit-log appends that failed (never surfaced to the "
                 "request path).")
        .mirror(audit_->failures());
    registry_
        .counter("wormrt_audit_rotations_total", {},
                 "Audit-log size rotations performed.")
        .mirror(audit_->rotations());
  }

  // Replication mirrors (DESIGN.md §15).
  const bool follower = follower_.load(std::memory_order_acquire);
  registry_
      .gauge("wormrt_repl_role", {},
             "Replication role: 0 = primary, 1 = follower.")
      .set(follower ? 1.0 : 0.0);
  registry_
      .gauge("wormrt_repl_epoch", {},
             "Fencing epoch of the local journal (bumped by PROMOTE).")
      .set(static_cast<double>(journal_ != nullptr ? journal_->epoch() : 1));
  if (follower) {
    const std::uint64_t primary =
        replica_primary_durable_.load(std::memory_order_relaxed);
    const std::uint64_t local =
        journal_ != nullptr ? journal_->durable_lsn() : 0;
    registry_
        .gauge("wormrt_repl_connected", {},
               "1 while the follower's pull session is live.")
        .set(replica_connected_.load(std::memory_order_relaxed) ? 1.0 : 0.0);
    registry_
        .gauge("wormrt_repl_lag_records", {{"follower", "self"}},
               "Journal records the primary has durable that this node "
               "has not (follower view).")
        .set(primary > local ? static_cast<double>(primary - local) : 0.0);
  } else if (repl_ != nullptr && journal_ != nullptr) {
    const std::vector<Replicator::FollowerInfo> followers =
        repl_->followers();
    registry_
        .gauge("wormrt_repl_followers", {},
               "Followers that have performed the replication handshake.")
        .set(static_cast<double>(followers.size()));
    const std::uint64_t local = journal_->durable_lsn();
    for (const Replicator::FollowerInfo& info : followers) {
      registry_
          .gauge("wormrt_repl_lag_records", {{"follower", info.id}},
                 "Journal records the primary has durable that this node "
                 "has not (follower view).")
          .set(local > info.durable_lsn
                   ? static_cast<double>(local - info.durable_lsn)
                   : 0.0);
    }
  }

  metrics_.population.set(static_cast<double>(ctrl_.size()));
}

Json Service::error_reply(const std::string& what) {
  metrics_.errors.inc();
  Json reply = Json::object();
  reply.set("ok", false);
  reply.set("error", what);
  return reply;
}

std::string Service::handle_line(const std::string& line) {
  // No exception may escape into the connection worker that called us:
  // a malformed or hostile line costs the sender one error reply, never
  // the daemon.  (parse() reports via parse_error, but dispatch runs
  // analysis code whose invariant checks may throw.)
  OBS_SPAN("handle_line");
  try {
    std::string parse_error;
    const Json request = Json::parse(line, &parse_error);
    Json reply;
    if (!parse_error.empty()) {
      reply = error_reply("bad json: " + parse_error);
    } else {
      reply = handle(request);
    }
    return reply.dump();
  } catch (const std::exception& e) {
    return error_reply(std::string("internal error: ") + e.what()).dump();
  } catch (...) {
    return error_reply("internal error").dump();
  }
}

Json Service::handle(const Json& request) {
  if (!request.is_object()) {
    return error_reply("request must be a json object");
  }
  const Json* verb = request.get("verb");
  if (verb == nullptr || !verb->is_string()) {
    return error_reply("missing verb");
  }
  const std::string& v = verb->as_string();
  // Mutating verbs manage mu_ themselves (they must release it while
  // waiting on the group commit); read verbs take it here.  A follower
  // refuses every mutation — replicated state arrives only through
  // apply_replicated — and refuses to serve replication itself.
  const bool mutating = v == "REQUEST" || v == "REMOVE" || v == "BATCH" ||
                        v == "LINK_DOWN" || v == "LINK_UP" ||
                        v == "REPL_HELLO" || v == "REPL_SNAPSHOT" ||
                        v == "REPL_PULL";
  if (mutating && is_follower()) {
    return error_reply("not primary");
  }
  if (v == "REQUEST") return do_request(request);
  if (v == "REMOVE") return do_remove(request);
  if (v == "BATCH") return do_batch(request);
  if (v == "LINK_DOWN") return do_link(request, /*down=*/true);
  if (v == "LINK_UP") return do_link(request, /*down=*/false);
  if (v == "REPL_HELLO") return do_repl_hello(request);
  if (v == "REPL_SNAPSHOT") return do_repl_snapshot(request);
  if (v == "REPL_PULL") return do_repl_pull(request);
  if (v == "PROMOTE") return do_promote(request);
  std::lock_guard<std::mutex> lk(mu_);
  PendingAck ack;
  return dispatch_locked(request, &ack);
}

Json Service::dispatch_locked(const Json& request, PendingAck* ack) {
  if (!request.is_object()) {
    return error_reply("request must be a json object");
  }
  const Json* verb = request.get("verb");
  if (verb == nullptr || !verb->is_string()) {
    return error_reply("missing verb");
  }
  const std::string& v = verb->as_string();
  if (v == "REQUEST") return do_request_locked(request, ack);
  if (v == "REMOVE") return do_remove_locked(request, ack);
  if (v == "QUERY") return do_query_locked(request);
  if (v == "EXPLAIN") return do_explain_locked(request);
  if (v == "SNAPSHOT") return do_snapshot_locked();
  if (v == "STATS") return do_stats_locked();
  if (v == "METRICS") return do_metrics_locked();
  if (v == "REPORT") return do_report_locked(request);
  if (v == "HEALTH") return do_health_locked();
  if (v == "HISTORY") return do_history_locked(request);
  if (v == "BATCH") {
    return error_reply("BATCH does not nest");
  }
  if (v == "LINK_DOWN" || v == "LINK_UP") {
    // The link cascade must be durable before it is applied (wait under
    // mu_), which the shared-group-commit batch path cannot provide.
    return error_reply(v + " is not batchable");
  }
  if (v == "REPL_HELLO" || v == "REPL_SNAPSHOT" || v == "REPL_PULL" ||
      v == "PROMOTE") {
    return error_reply(v + " is not batchable");
  }
  if (v == "SHUTDOWN") {
    shutdown_.store(true, std::memory_order_release);
    Json reply = Json::object();
    reply.set("ok", true);
    reply.set("shutting_down", true);
    return reply;
  }
  return error_reply("unknown verb: " + v);
}

void Service::prune_staged_locked() {
  if (journal_ == nullptr || staged_.empty()) {
    return;
  }
  const std::uint64_t durable = journal_->durable_lsn();
  while (!staged_.empty() && staged_.front().lsn <= durable) {
    staged_.pop_front();
  }
}

void Service::catch_up_rollback_locked() {
  if (journal_ == nullptr) {
    return;
  }
  const std::uint64_t failed = journal_->failed_through();
  if (failed <= rolled_back_through_) {
    return;
  }
  // Undo newest-first: each unadmit() then reverses the engine's most
  // recent admission, and a rolled-back REMOVE's restore() cannot sit
  // above a staged ADD it predates.
  const std::uint64_t durable = journal_->durable_lsn();
  while (!staged_.empty() && staged_.back().lsn > durable) {
    const StagedMutation& m = staged_.back();
    if (m.type == JournalRecord::Type::kAdd) {
      ctrl_.unadmit(m.entry.handle);
    } else {
      ctrl_.restore(static_cast<topo::NodeId>(m.entry.src),
                    static_cast<topo::NodeId>(m.entry.dst),
                    static_cast<Priority>(m.entry.priority), m.entry.period,
                    m.entry.length, m.entry.deadline, m.entry.handle,
                    static_cast<int>(m.entry.route_order));
    }
    staged_.pop_back();
  }
  rolled_back_through_ = failed;
  if (repl_ != nullptr) {
    // The replication buffer mirrors staged_: records of the failed
    // batch must never ship to a follower.
    repl_->drop_above(durable);
  }
  metrics_.population.set(static_cast<double>(ctrl_.size()));
}

bool Service::await_durable(const PendingAck& ack, Json* reply) {
  std::string err;
  if (journal_->wait_durable(ack.lsn, &err)) {
    return true;
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    catch_up_rollback_locked();
  }
  *reply = error_reply(std::string(ack.is_add ? "admission not durable: "
                                              : "teardown not durable: ") +
                       err);
  return false;
}

Json Service::provenance_json(const core::BoundProvenance& p) {
  Json out = Json::object();
  out.set("bound", p.bound);
  out.set("deadline", p.deadline);
  out.set("base_latency", p.base_latency);
  out.set("interference", p.interference);
  out.set("horizon", p.horizon_used);
  out.set("doublings", static_cast<std::int64_t>(p.horizon_doublings));
  out.set("suppressed_instances",
          static_cast<std::int64_t>(p.suppressed_instances));
  out.set("deadline_pruned", p.deadline_pruned);
  Json terms = Json::array();
  for (const core::InterferenceTerm& t : p.terms) {
    Json term = Json::object();
    term.set("stream", t.id);
    term.set("priority", static_cast<std::int64_t>(t.priority));
    term.set("mode", t.mode == core::BlockMode::kDirect ? "direct"
                                                        : "indirect");
    term.set("period", t.period);
    term.set("length", t.length);
    term.set("slots", t.slots);
    term.set("instances", static_cast<std::int64_t>(t.instances));
    term.set("suppressed", static_cast<std::int64_t>(t.suppressed));
    terms.push_back(std::move(term));
  }
  out.set("terms", std::move(terms));
  out.set("text", p.render());
  return out;
}

Json Service::do_request_locked(const Json& request, PendingAck* ack) {
  OBS_SPAN("verb_request");
  std::int64_t src = 0, dst = 0, priority = 0, period = 0, length = 0,
               deadline = 0;
  if (!req_int(request, "src", &src) || !req_int(request, "dst", &dst) ||
      !req_int(request, "priority", &priority) ||
      !req_int(request, "period", &period) ||
      !req_int(request, "length", &length) ||
      !req_int(request, "deadline", &deadline)) {
    return error_reply(
        "REQUEST needs integer src, dst, priority, period, length, deadline");
  }
  if (src < 0 || src >= topo_.num_nodes() || dst < 0 ||
      dst >= topo_.num_nodes()) {
    return error_reply("node id out of range");
  }
  if (src == dst) {
    return error_reply("source equals destination");
  }
  if (period <= 0 || length <= 0 || deadline <= 0) {
    return error_reply("period, length, deadline must be positive");
  }
  const Json* ex = request.get("explain");
  const bool want_explain = ex != nullptr && ex->as_bool();

  // Never decide against state a failed commit is about to unwind.
  catch_up_rollback_locked();
  prune_staged_locked();

  core::BoundProvenance provenance;
  const double t0 = now_us();
  const auto decision = ctrl_.request(
      static_cast<topo::NodeId>(src), static_cast<topo::NodeId>(dst),
      static_cast<Priority>(priority), period, length, deadline,
      want_explain ? &provenance : nullptr);
  metrics_.latency_us.observe(now_us() - t0);
  metrics_.requests.inc();

  if (decision.admitted && journal_ != nullptr) {
    // Write-ahead contract: the admission is acknowledged only once its
    // journal record is durable.  The record is staged here, inside the
    // same critical section that applied the admission (LSN order ==
    // apply order, which replay depends on); the durability wait runs
    // after mu_ is released so concurrent admissions share one fsync.
    JournalEntry e;
    e.handle = decision.handle;
    e.src = src;
    e.dst = dst;
    e.priority = priority;
    e.period = period;
    e.length = length;
    e.deadline = deadline;
    e.route_order = decision.route_order;
    std::string err;
    std::uint64_t lsn = 0;
    if (!journal_->stage(JournalRecord::Type::kAdd, e, &lsn, &err)) {
      ctrl_.unadmit(decision.handle);
      metrics_.population.set(static_cast<double>(ctrl_.size()));
      return error_reply("admission not durable: " + err);
    }
    staged_.push_back({lsn, JournalRecord::Type::kAdd, e});
    if (repl_ != nullptr) {
      repl_->publish({JournalRecord::Type::kAdd, lsn, e});
    }
    ack->staged = true;
    ack->lsn = lsn;
    ack->is_add = true;
  } else if (decision.admitted) {
    metrics_.admitted.inc();
  }
  if (!decision.admitted) {
    metrics_.rejected.inc();
  }
  metrics_.population.set(static_cast<double>(ctrl_.size()));

  Json reply = Json::object();
  reply.set("ok", true);
  reply.set("admitted", decision.admitted);
  reply.set("bound", decision.bound);
  reply.set("flit_valid", decision.flit_valid);
  if (decision.no_route) {
    reply.set("no_route", true);
  }
  if (decision.admitted) {
    reply.set("handle", decision.handle);
    reply.set("route_order", static_cast<std::int64_t>(decision.route_order));
  }
  Json broken = Json::array();
  for (const auto h : decision.would_break) {
    broken.push_back(h);
  }
  reply.set("would_break", std::move(broken));
  if (want_explain) {
    reply.set("explain", provenance_json(provenance));
  }

  if (audit_ != nullptr) {
    // Drafted here (all the decision context is in scope), written by
    // audit_resolved() once the covering commit settles — the audit
    // line records whether the ack actually went out durable.
    Json rec = Json::object();
    rec.set("event", "request");
    rec.set("admitted", decision.admitted);
    rec.set("src", src);
    rec.set("dst", dst);
    rec.set("priority", priority);
    rec.set("period", period);
    rec.set("length", length);
    rec.set("deadline", deadline);
    rec.set("bound", decision.bound);
    rec.set("flit_valid", decision.flit_valid);
    if (decision.no_route) {
      rec.set("no_route", true);
    }
    if (!decision.would_break.empty()) {
      Json wb = Json::array();
      for (const auto h : decision.would_break) {
        wb.push_back(h);
      }
      rec.set("would_break", std::move(wb));
    }
    if (decision.admitted) {
      rec.set("handle", decision.handle);
      rec.set("route_order",
              static_cast<std::int64_t>(decision.route_order));
    }
    if (want_explain) {
      rec.set("explain", provenance_json(provenance));
    }
    ack->audit = std::move(rec);
    ack->has_audit = true;
  }
  return reply;
}

Json Service::do_request(const Json& request) {
  PendingAck ack;
  Json reply;
  bool durable_ok = true;
  {
    std::lock_guard<std::mutex> lk(mu_);
    reply = do_request_locked(request, &ack);
    if (ack.staged && !options_.group_commit) {
      // Serial mode: wait under the lock — one fsync per mutation, the
      // exact PR-5 behaviour.
      std::string err;
      if (journal_->wait_durable(ack.lsn, &err)) {
        metrics_.admitted.inc();
      } else {
        catch_up_rollback_locked();
        reply = error_reply("admission not durable: " + err);
        durable_ok = false;
      }
      ack.staged = false;
    }
    maybe_compact();
  }
  if (ack.staged) {
    durable_ok = await_durable(ack, &reply);
    if (durable_ok) {
      metrics_.admitted.inc();
    }
  }
  if (durable_ok && ack.lsn != 0) {
    sync_replication_wait(ack.lsn);
  }
  audit_resolved(&ack, durable_ok);
  return reply;
}

Json Service::do_remove_locked(const Json& request, PendingAck* ack) {
  std::int64_t handle = 0;
  if (!req_int(request, "handle", &handle)) {
    return error_reply("REMOVE needs integer handle");
  }
  metrics_.removes.inc();
  catch_up_rollback_locked();
  prune_staged_locked();
  bool removed = false;
  const core::MessageStream* stream = ctrl_.engine().find(handle);
  if (journal_ != nullptr && stream != nullptr) {
    // Journal the teardown BEFORE applying it, so a stage failure
    // leaves the engine untouched; the full parameter block is kept in
    // staged_ (not on disk — REMOVE records stay handle-only) so a
    // failed commit can restore the stream.
    JournalEntry e;
    e.handle = handle;
    e.src = stream->src;
    e.dst = stream->dst;
    e.priority = stream->priority;
    e.period = stream->period;
    e.length = stream->length;
    e.deadline = stream->deadline;
    e.route_order = stream->route_order;
    std::string err;
    std::uint64_t lsn = 0;
    if (!journal_->stage(JournalRecord::Type::kRemove, e, &lsn, &err)) {
      return error_reply("teardown not durable: " + err);
    }
    staged_.push_back({lsn, JournalRecord::Type::kRemove, e});
    if (repl_ != nullptr) {
      repl_->publish({JournalRecord::Type::kRemove, lsn, e});
    }
    ack->staged = true;
    ack->lsn = lsn;
    ack->is_add = false;
    removed = ctrl_.remove(handle);
  } else {
    removed = ctrl_.remove(handle);
  }
  metrics_.population.set(static_cast<double>(ctrl_.size()));
  if (audit_ != nullptr && removed) {
    Json rec = Json::object();
    rec.set("event", "remove");
    rec.set("handle", handle);
    ack->audit = std::move(rec);
    ack->has_audit = true;
  }
  Json reply = Json::object();
  reply.set("ok", true);
  reply.set("removed", removed);
  return reply;
}

Json Service::do_remove(const Json& request) {
  PendingAck ack;
  Json reply;
  bool durable_ok = true;
  {
    std::lock_guard<std::mutex> lk(mu_);
    reply = do_remove_locked(request, &ack);
    if (ack.staged && !options_.group_commit) {
      std::string err;
      if (!journal_->wait_durable(ack.lsn, &err)) {
        catch_up_rollback_locked();
        reply = error_reply("teardown not durable: " + err);
        durable_ok = false;
      }
      ack.staged = false;
    }
    maybe_compact();
  }
  if (ack.staged) {
    durable_ok = await_durable(ack, &reply);
  }
  if (durable_ok && ack.lsn != 0) {
    sync_replication_wait(ack.lsn);
  }
  audit_resolved(&ack, durable_ok);
  return reply;
}

Json Service::do_batch(const Json& request) {
  OBS_SPAN("verb_batch");
  const Json* reqs = request.get("requests");
  if (reqs == nullptr || !reqs->is_array()) {
    return error_reply("BATCH needs a requests array");
  }
  const std::vector<Json>& items = reqs->items();
  constexpr std::size_t kMaxBatch = 4096;
  if (items.size() > kMaxBatch) {
    return error_reply("BATCH too large (max 4096 sub-requests)");
  }
  std::vector<Json> replies(items.size());
  std::vector<PendingAck> acks(items.size());
  std::uint64_t max_lsn = 0;
  bool any_staged = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (std::size_t i = 0; i < items.size(); ++i) {
      replies[i] = dispatch_locked(items[i], &acks[i]);
      if (acks[i].staged) {
        max_lsn = acks[i].lsn;
        any_staged = true;
      }
    }
    if (any_staged && !options_.group_commit) {
      std::string err;
      if (!journal_->wait_durable(max_lsn, &err)) {
        catch_up_rollback_locked();
      }
      // Fixed up below against the durable watermark, same as the
      // group-commit path.
    }
    maybe_compact();
  }
  if (any_staged && options_.group_commit) {
    // One wait covers the whole batch: the leader's single fsync makes
    // every staged sub-request durable at once.
    std::string err;
    if (!journal_->wait_durable(max_lsn, &err)) {
      std::lock_guard<std::mutex> lk(mu_);
      catch_up_rollback_locked();
    }
  }
  // Per-sub-request fixup.  wait_durable() is instant here — every
  // LSN <= max_lsn is already resolved — and, unlike a durable_lsn()
  // comparison, it reports an LSN inside a failed range honestly even
  // after a later batch advanced the watermark past it.
  std::uint64_t sync_lsn = 0;
  for (std::size_t i = 0; i < items.size(); ++i) {
    bool sub_ok = true;
    if (acks[i].staged) {
      std::string sub_err;
      if (journal_->wait_durable(acks[i].lsn, &sub_err)) {
        if (acks[i].is_add) {
          metrics_.admitted.inc();
        }
        sync_lsn = std::max(sync_lsn, acks[i].lsn);
      } else {
        sub_ok = false;
        replies[i] = error_reply(
            std::string(acks[i].is_add ? "admission not durable: "
                                       : "teardown not durable: ") +
            sub_err);
      }
    }
    audit_resolved(&acks[i], sub_ok);
  }
  if (sync_lsn != 0) {
    // One follower-durability wait covers the whole batch.
    sync_replication_wait(sync_lsn);
  }
  Json reply = Json::object();
  reply.set("ok", true);
  Json arr = Json::array();
  for (Json& r : replies) {
    arr.push_back(std::move(r));
  }
  reply.set("replies", std::move(arr));
  return reply;
}

Json Service::do_link(const Json& request, bool down) {
  OBS_SPAN(down ? "verb_link_down" : "verb_link_up");
  std::uint64_t sync_lsn = 0;
  Json reply;
  {
    std::lock_guard<std::mutex> lk(mu_);
    reply = do_link_locked(request, down, &sync_lsn);
  }
  if (sync_lsn != 0) {
    sync_replication_wait(sync_lsn);
  }
  return reply;
}

Json Service::do_link_locked(const Json& request, bool down,
                             std::uint64_t* sync_lsn) {
  (down ? metrics_.link_downs : metrics_.link_ups).inc();

  // Channel addressing: {channel} by id, or {src,dst} by endpoints.
  topo::ChannelId channel = topo::kNoChannel;
  std::int64_t id = 0, src = 0, dst = 0;
  if (req_int(request, "channel", &id)) {
    if (id < 0 || id >= static_cast<std::int64_t>(topo_.num_channels())) {
      return error_reply("channel id out of range");
    }
    channel = static_cast<topo::ChannelId>(id);
  } else if (req_int(request, "src", &src) && req_int(request, "dst", &dst)) {
    if (src < 0 || src >= topo_.num_nodes() || dst < 0 ||
        dst >= topo_.num_nodes()) {
      return error_reply("node id out of range");
    }
    channel = topo_.channel_between(static_cast<topo::NodeId>(src),
                                    static_cast<topo::NodeId>(dst));
    if (channel == topo::kNoChannel) {
      return error_reply("no channel " + std::to_string(src) + "->" +
                         std::to_string(dst) + " in this topology");
    }
  } else {
    return error_reply(std::string(down ? "LINK_DOWN" : "LINK_UP") +
                       " needs integer channel, or integer src and dst");
  }
  const topo::Channel& endpoints = topo_.channels().channel(channel);

  // Never decide against state a failed commit is about to unwind.
  catch_up_rollback_locked();
  prune_staged_locked();

  // A no-op mutation (taking down a faulted channel, repairing a healthy
  // one) is an error and is NOT journaled — replay therefore never sees
  // no-op link records, keeping the cascade replay deterministic.
  if (topo_.channel_faulted(channel) == down) {
    return error_reply(std::string("channel ") + std::to_string(channel) +
                       (down ? " is already down" : " is already up"));
  }

  if (journal_ != nullptr) {
    // Write-ahead, strictly: the record is made durable UNDER mu_
    // before the cascade mutates anything.  On failure nothing was
    // applied, so only concurrently staged mutations need rolling back.
    JournalEntry e;
    e.src = endpoints.src;
    e.dst = endpoints.dst;
    std::string err;
    std::uint64_t lsn = 0;
    const auto type = down ? JournalRecord::Type::kLinkDown
                           : JournalRecord::Type::kLinkUp;
    if (!journal_->stage(type, e, &lsn, &err) ||
        !journal_->wait_durable(lsn, &err)) {
      catch_up_rollback_locked();
      return error_reply("link mutation not durable: " + err);
    }
    if (repl_ != nullptr) {
      // Already durable here (link records wait under mu_), so the
      // record ships on the follower's next pull.
      repl_->publish({type, lsn, e});
    }
    *sync_lsn = lsn;
  }

  const core::AdmissionController::LinkMutation m =
      down ? ctrl_.link_down(channel) : ctrl_.link_up(channel);
  metrics_.link_evicted.inc(m.evicted.size());
  metrics_.link_rerouted.inc(m.rerouted.size());
  metrics_.population.set(static_cast<double>(ctrl_.size()));
  maybe_compact();

  Json reply = Json::object();
  reply.set("ok", true);
  reply.set("channel", static_cast<std::int64_t>(channel));
  reply.set("src", static_cast<std::int64_t>(endpoints.src));
  reply.set("dst", static_cast<std::int64_t>(endpoints.dst));
  reply.set("changed", m.changed);
  Json evicted = Json::array();
  for (const auto h : m.evicted) {
    evicted.push_back(h);
  }
  reply.set("evicted", std::move(evicted));
  Json rerouted = Json::array();
  for (const auto h : m.rerouted) {
    rerouted.push_back(h);
  }
  reply.set("rerouted", std::move(rerouted));
  reply.set("recomputed", static_cast<std::int64_t>(m.recomputed.size()));

  if (audit_ != nullptr) {
    // Written under mu_ — acceptable for the rare, already-serialised
    // link verbs (the record is durable-before-apply anyway).
    Json rec = Json::object();
    rec.set("event", down ? "link_down" : "link_up");
    rec.set("channel", static_cast<std::int64_t>(channel));
    rec.set("src", static_cast<std::int64_t>(endpoints.src));
    rec.set("dst", static_cast<std::int64_t>(endpoints.dst));
    Json audit_evicted = Json::array();
    for (const auto h : m.evicted) {
      audit_evicted.push_back(h);
    }
    rec.set("evicted", std::move(audit_evicted));
    Json audit_rerouted = Json::array();
    for (const auto h : m.rerouted) {
      audit_rerouted.push_back(h);
    }
    rec.set("rerouted", std::move(audit_rerouted));
    rec.set("recomputed", static_cast<std::int64_t>(m.recomputed.size()));
    if (*sync_lsn != 0) {
      rec.set("lsn", static_cast<std::int64_t>(*sync_lsn));
      rec.set("durable", true);
    }
    audit_->append(std::move(rec));
  }
  return reply;
}

Json Service::do_query_locked(const Json& request) {
  std::int64_t handle = 0;
  if (!req_int(request, "handle", &handle)) {
    return error_reply("QUERY needs integer handle");
  }
  metrics_.queries.inc();
  const auto bound = ctrl_.bound_of(handle);
  if (!bound.has_value()) {
    return error_reply("unknown handle");
  }
  const auto* stream = ctrl_.engine().find(handle);
  Json reply = Json::object();
  reply.set("ok", true);
  reply.set("bound", *bound);
  reply.set("deadline", stream->deadline);
  reply.set("guaranteed", *bound != kNoTime && *bound <= stream->deadline);
  return reply;
}

Json Service::do_explain_locked(const Json& request) {
  OBS_SPAN("verb_explain");
  std::int64_t handle = 0;
  if (!req_int(request, "handle", &handle)) {
    return error_reply("EXPLAIN needs integer handle");
  }
  metrics_.explains.inc();
  const auto provenance = ctrl_.explain(handle);
  if (!provenance.has_value()) {
    return error_reply("unknown handle");
  }
  Json reply = provenance_json(*provenance);
  reply.set("ok", true);
  reply.set("handle", handle);
  return reply;
}

Json Service::do_snapshot_locked() {
  metrics_.snapshots.inc();
  const core::StreamSet streams = ctrl_.snapshot();
  Json reply = Json::object();
  reply.set("ok", true);
  reply.set("size", static_cast<std::int64_t>(streams.size()));
  reply.set("csv", core::streams_to_csv(streams));
  return reply;
}

Json Service::do_stats_locked() {
  metrics_.stats.inc();

  // The wire format predates the metrics registry and is kept stable
  // (asserted by the daemon e2e test): per-verb counts under "verbs",
  // engine work counters under "engine", latency summary + rendered
  // histogram at the top level.
  Json verbs = Json::object();
  verbs.set("requests",
            static_cast<std::int64_t>(metrics_.requests.value()));
  verbs.set("admitted",
            static_cast<std::int64_t>(metrics_.admitted.value()));
  verbs.set("rejected",
            static_cast<std::int64_t>(metrics_.rejected.value()));
  verbs.set("removes", static_cast<std::int64_t>(metrics_.removes.value()));
  verbs.set("queries", static_cast<std::int64_t>(metrics_.queries.value()));
  verbs.set("explains",
            static_cast<std::int64_t>(metrics_.explains.value()));
  verbs.set("snapshots",
            static_cast<std::int64_t>(metrics_.snapshots.value()));
  verbs.set("stats", static_cast<std::int64_t>(metrics_.stats.value()));
  verbs.set("link_downs",
            static_cast<std::int64_t>(metrics_.link_downs.value()));
  verbs.set("link_ups", static_cast<std::int64_t>(metrics_.link_ups.value()));
  verbs.set("metrics", static_cast<std::int64_t>(metrics_.metrics.value()));
  verbs.set("reports", static_cast<std::int64_t>(metrics_.reports.value()));
  verbs.set("healths", static_cast<std::int64_t>(metrics_.healths.value()));
  verbs.set("histories",
            static_cast<std::int64_t>(metrics_.histories.value()));
  verbs.set("link_evicted",
            static_cast<std::int64_t>(metrics_.link_evicted.value()));
  verbs.set("link_rerouted",
            static_cast<std::int64_t>(metrics_.link_rerouted.value()));
  verbs.set("errors", static_cast<std::int64_t>(metrics_.errors.value()));

  const auto& engine_stats = ctrl_.engine().stats();
  Json engine = Json::object();
  engine.set("adds", static_cast<std::int64_t>(engine_stats.adds));
  engine.set("removes", static_cast<std::int64_t>(engine_stats.removes));
  engine.set("bound_recomputes",
             static_cast<std::int64_t>(engine_stats.bound_recomputes));
  engine.set("dirty_marked",
             static_cast<std::int64_t>(engine_stats.dirty_marked));
  engine.set("edge_updates",
             static_cast<std::int64_t>(engine_stats.edge_updates));
  engine.set("bound_cache_hits",
             static_cast<std::int64_t>(engine_stats.bound_cache_hits));

  Json latency = Json::object();
  const std::uint64_t count = metrics_.latency_us.count();
  latency.set("count", static_cast<std::int64_t>(count));
  if (count > 0) {
    latency.set("mean_us", metrics_.latency_us.sum() /
                               static_cast<double>(count));
    latency.set("p50_us", metrics_.latency_us.quantile(0.50));
    latency.set("p99_us", metrics_.latency_us.quantile(0.99));
    latency.set("p999_us", metrics_.latency_us.p999());
    latency.set("max_us", metrics_.latency_us.max());
  }

  Json reply = Json::object();
  reply.set("ok", true);
  reply.set("population", static_cast<std::int64_t>(ctrl_.size()));
  reply.set("verbs", std::move(verbs));
  reply.set("engine", std::move(engine));
  reply.set("latency", std::move(latency));
  reply.set("histogram", metrics_.latency_us.merged().render());
  return reply;
}

Json Service::do_metrics_locked() {
  metrics_.metrics.inc();
  refresh_mirrors();
  Json reply = Json::object();
  reply.set("ok", true);
  reply.set("prometheus", registry_.to_prometheus());
  std::string parse_error;
  Json exposition = Json::parse(registry_.to_json(), &parse_error);
  if (parse_error.empty()) {
    reply.set("metrics", std::move(exposition));
  }
  return reply;
}

bool Service::report_one_locked(std::int64_t handle, double observed,
                                Json* out) {
  const core::MessageStream* stream = ctrl_.engine().find(handle);
  if (stream == nullptr) {
    return false;
  }
  // Always the engine's CURRENT bound: a cached copy would go stale
  // whenever a later mutation's dirty closure recomputes this stream.
  const Time bound = ctrl_.engine().bound_at(ctrl_.engine().id_of(handle));
  const bool flit_valid = bound != kNoTime && bound + 2 <= stream->period;
  const obs::ConformanceMonitor::Outcome outcome = conformance_.report(
      handle, observed, static_cast<double>(bound),
      static_cast<double>(stream->period), flit_valid);
  out->set("handle", handle);
  out->set("observed_latency", observed);
  out->set("bound", bound);
  out->set("flit_valid", flit_valid);
  out->set("violation", outcome.violation);
  out->set("max_observed", outcome.max_observed);
  out->set("violations", static_cast<std::int64_t>(outcome.violations));
  return true;
}

Json Service::do_report_locked(const Json& request) {
  metrics_.reports.inc();
  const Json* reports = request.get("reports");
  if (reports != nullptr) {
    // Array form: one round trip for a whole measurement sweep.
    // Unknown handles (e.g. removed since the harness sampled) are
    // counted, not errors — the rest of the sweep still lands.
    if (!reports->is_array()) {
      return error_reply("REPORT reports must be an array");
    }
    std::int64_t accepted = 0, unknown = 0, violations = 0;
    for (const Json& item : reports->items()) {
      std::int64_t handle = 0;
      const Json* observed = item.is_object() ? item.get("observed_latency")
                                              : nullptr;
      if (!item.is_object() || !req_int(item, "handle", &handle) ||
          observed == nullptr || !observed->is_number()) {
        return error_reply(
            "REPORT reports entries need integer handle and numeric "
            "observed_latency");
      }
      Json one = Json::object();
      if (!report_one_locked(handle, observed->as_double(), &one)) {
        ++unknown;
        continue;
      }
      ++accepted;
      const Json* v = one.get("violation");
      if (v != nullptr && v->as_bool()) {
        ++violations;
      }
    }
    Json reply = Json::object();
    reply.set("ok", true);
    reply.set("accepted", accepted);
    reply.set("unknown", unknown);
    reply.set("violations", violations);
    return reply;
  }
  std::int64_t handle = 0;
  const Json* observed = request.get("observed_latency");
  if (!req_int(request, "handle", &handle) || observed == nullptr ||
      !observed->is_number()) {
    return error_reply(
        "REPORT needs integer handle and numeric observed_latency (or a "
        "reports array)");
  }
  Json reply = Json::object();
  if (!report_one_locked(handle, observed->as_double(), &reply)) {
    return error_reply("unknown handle");
  }
  reply.set("ok", true);
  return reply;
}

std::string Service::health_status_locked(std::vector<std::string>* reasons,
                                          Json* checks) const {
  // Thresholds: conservative constants, documented in DESIGN.md §14.
  // "critical" is reserved for lost durability — the daemon is up but
  // its contract is broken; everything else degrades.
  constexpr double kFsyncP99DegradedUs = 25000.0;  // half the ladder
  constexpr double kQueueDepthPerWorker = 4.0;

  bool critical = false;
  const auto degrade = [reasons](const std::string& why) {
    reasons->push_back(why);
  };

  const std::uint64_t violations = conformance_.total_violations();
  checks->set("bound_violations", static_cast<std::int64_t>(violations));
  if (violations > 0) {
    degrade("bound_violations: " + std::to_string(violations) +
            " reported latencies exceeded the analytic bound");
  }

  int faulted = 0;
  const topo::ChannelGraph& channels = topo_.channels();
  for (std::size_t i = 0; i < channels.size(); ++i) {
    if (channels.is_faulted(static_cast<topo::ChannelId>(i))) {
      ++faulted;
    }
  }
  checks->set("faulted_channels", static_cast<std::int64_t>(faulted));
  if (faulted > 0) {
    degrade("faulted_links: " + std::to_string(faulted) +
            " channels are marked down");
  }

  if (journal_ != nullptr) {
    const std::uint64_t failed = journal_->failed_through();
    checks->set("journal_failed_lsn", static_cast<std::int64_t>(failed));
    if (failed > 0) {
      critical = true;
      degrade("journal_commit_failed: mutations through LSN " +
              std::to_string(failed) + " could not be made durable");
    }
    const obs::Histogram& fsync = registry_.histogram(
        "wormrt_journal_fsync_us", 0.0, 50000.0, 1000, {});
    const double p99 = fsync.count() > 0 ? fsync.p99() : 0.0;
    checks->set("fsync_p99_us", p99);
    if (p99 > kFsyncP99DegradedUs) {
      degrade("journal_fsync_p99_high: " + std::to_string(p99) + "us");
    }
    const std::uint64_t compaction_failures =
        registry_.counter("wormrt_journal_compaction_failures_total", {})
            .value();
    checks->set("compaction_failures",
                static_cast<std::int64_t>(compaction_failures));
    if (compaction_failures > 0) {
      degrade("journal_compaction_failures: " +
              std::to_string(compaction_failures));
    }
  }

  const util::ThreadPool::Stats pool = util::ThreadPool::shared().stats();
  checks->set("threadpool_queue_depth",
              static_cast<std::int64_t>(pool.queue_depth));
  if (pool.workers > 0 &&
      static_cast<double>(pool.queue_depth) >
          kQueueDepthPerWorker * static_cast<double>(pool.workers)) {
    degrade("dispatch_queue_deep: " + std::to_string(pool.queue_depth) +
            " tasks queued over " + std::to_string(pool.workers) +
            " workers");
  }

  double sheds = 0.0;
  for (const char* reason : {"overloaded", "line_too_long", "idle_timeout"}) {
    sheds += static_cast<double>(
        registry_.counter("wormrt_server_sheds_total", {{"reason", reason}})
            .value());
  }
  checks->set("sheds_total", sheds);
  // Sheds degrade only while they are RECENT (the last minute of
  // history): a shed an hour ago must not fail today's readiness probe.
  const obs::TimeSeries* shed_series = sampler_.find("sheds_total");
  if (shed_series != nullptr) {
    const auto window = shed_series->window(sampler_.now_ms() - 60000);
    if (window.size() >= 2 &&
        window.back().value > window.front().value) {
      degrade("connections_shed_recently: " +
              std::to_string(static_cast<std::int64_t>(
                  window.back().value - window.front().value)) +
              " in the last minute");
    }
  }

  if (audit_ != nullptr && audit_->failures() > 0) {
    degrade("audit_write_failures: " + std::to_string(audit_->failures()));
  }

  // Replication (DESIGN.md §15).  A follower degrades when its pull
  // session is down or it trails the primary by more than the
  // configured record budget; a primary degrades when --sync-replication
  // acks had to go out without follower coverage.
  const bool follower = follower_.load(std::memory_order_acquire);
  if (follower) {
    const std::uint64_t primary =
        replica_primary_durable_.load(std::memory_order_relaxed);
    const std::uint64_t local =
        journal_ != nullptr ? journal_->durable_lsn() : 0;
    const std::uint64_t lag = primary > local ? primary - local : 0;
    checks->set("replication_lag", static_cast<std::int64_t>(lag));
    if (!replica_connected_.load(std::memory_order_relaxed)) {
      degrade("replication_disconnected: the pull session to the "
              "primary is down");
    }
    if (lag > options_.repl_lag_degraded) {
      degrade("replication_lag_high: " + std::to_string(lag) +
              " records behind the primary (budget " +
              std::to_string(options_.repl_lag_degraded) + ")");
    }
  } else if (repl_ != nullptr && journal_ != nullptr) {
    const std::uint64_t acked = repl_->max_follower_durable();
    const std::uint64_t local = journal_->durable_lsn();
    const std::uint64_t lag =
        !repl_->followers().empty() && local > acked ? local - acked : 0;
    checks->set("replication_lag", static_cast<std::int64_t>(lag));
    if (lag > options_.repl_lag_degraded) {
      degrade("replication_lag_high: slowest follower is " +
              std::to_string(lag) + " records behind (budget " +
              std::to_string(options_.repl_lag_degraded) + ")");
    }
    const std::uint64_t sync_timeouts =
        registry_.counter("wormrt_repl_sync_timeouts_total", {}).value();
    if (options_.sync_replication && sync_timeouts > 0) {
      degrade("replication_sync_timeouts: " +
              std::to_string(sync_timeouts) +
              " acks degraded to async replication");
    }
  }

  if (critical) {
    return "critical";
  }
  return reasons->empty() ? "ok" : "degraded";
}

Json Service::do_health_locked() {
  OBS_SPAN("verb_health");
  metrics_.healths.inc();
  refresh_mirrors();

  std::vector<std::string> reasons;
  Json checks = Json::object();
  const std::string status = health_status_locked(&reasons, &checks);

  Json reply = Json::object();
  reply.set("ok", true);
  reply.set("status", status);
  Json reasons_json = Json::array();
  for (const std::string& r : reasons) {
    reasons_json.push_back(r);
  }
  reply.set("reasons", std::move(reasons_json));
  checks.set("population", static_cast<std::int64_t>(ctrl_.size()));
  reply.set("checks", std::move(checks));

  // Replication identity + progress, for wormrt-top and the smoke
  // scripts (absent only on a state-less primary with no journal).
  Json repl = Json::object();
  const bool follower = follower_.load(std::memory_order_acquire);
  repl.set("role", follower ? "follower" : "primary");
  repl.set("epoch", static_cast<std::int64_t>(
                        journal_ != nullptr ? journal_->epoch() : 1));
  repl.set("durable_lsn", static_cast<std::int64_t>(
                              journal_ != nullptr ? journal_->durable_lsn()
                                                  : 0));
  if (follower) {
    repl.set("connected",
             replica_connected_.load(std::memory_order_relaxed));
    repl.set("primary_durable_lsn",
             static_cast<std::int64_t>(
                 replica_primary_durable_.load(std::memory_order_relaxed)));
    repl.set("primary_epoch",
             static_cast<std::int64_t>(
                 replica_primary_epoch_.load(std::memory_order_relaxed)));
  } else if (repl_ != nullptr && journal_ != nullptr) {
    repl.set("sync", options_.sync_replication);
    const std::uint64_t local = journal_->durable_lsn();
    Json followers_json = Json::array();
    for (const Replicator::FollowerInfo& info : repl_->followers()) {
      Json f = Json::object();
      f.set("id", info.id);
      f.set("durable_lsn", static_cast<std::int64_t>(info.durable_lsn));
      f.set("lag", static_cast<std::int64_t>(
                       local > info.durable_lsn ? local - info.durable_lsn
                                                : 0));
      f.set("last_seen_ms", info.last_seen_ms);
      followers_json.push_back(std::move(f));
    }
    repl.set("followers", std::move(followers_json));
  }
  reply.set("replication", std::move(repl));

  // Conformance: every established stream with its CURRENT bound and
  // slack, joined with the monitor's observations, tightest slack
  // first (the wormrt-top "top-N streams by slack" feed), capped.
  constexpr std::size_t kMaxStreams = 32;
  std::map<std::int64_t, obs::ConformanceMonitor::Record> observed;
  for (const obs::ConformanceMonitor::Record& rec : conformance_.records()) {
    observed[rec.handle] = rec;
  }
  const core::IncrementalAnalyzer& engine = ctrl_.engine();
  struct Row {
    std::int64_t handle;
    Time bound;
    Time period;
    Time slack;
    bool flit_valid;
  };
  std::vector<Row> rows;
  rows.reserve(engine.size());
  for (std::size_t i = 0; i < engine.size(); ++i) {
    const auto id = static_cast<StreamId>(i);
    const Time bound = engine.bound_at(id);
    const Time period = engine.streams()[id].period;
    Row row;
    row.handle = engine.handle_of(id);
    row.bound = bound;
    row.period = period;
    row.slack = bound == kNoTime ? kNoTime : period - bound;
    row.flit_valid = bound != kNoTime && bound + 2 <= period;
    rows.push_back(row);
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    // Unbounded streams (kNoTime) carry no claim — sort them last.
    const Time sa = a.bound == kNoTime
                        ? std::numeric_limits<Time>::max()
                        : a.slack;
    const Time sb = b.bound == kNoTime
                        ? std::numeric_limits<Time>::max()
                        : b.slack;
    if (sa != sb) {
      return sa < sb;
    }
    return a.handle < b.handle;
  });
  Json conformance = Json::object();
  conformance.set("tracked", static_cast<std::int64_t>(conformance_.size()));
  conformance.set("violations",
                  static_cast<std::int64_t>(conformance_.total_violations()));
  Json streams = Json::array();
  for (std::size_t i = 0; i < rows.size() && i < kMaxStreams; ++i) {
    const Row& row = rows[i];
    Json s = Json::object();
    s.set("handle", row.handle);
    s.set("bound", row.bound);
    s.set("period", row.period);
    s.set("slack", row.slack);
    s.set("flit_valid", row.flit_valid);
    const auto it = observed.find(row.handle);
    if (it != observed.end()) {
      s.set("max_observed", it->second.max_observed);
      s.set("reports", static_cast<std::int64_t>(it->second.reports));
      s.set("violations", static_cast<std::int64_t>(it->second.violations));
    }
    streams.push_back(std::move(s));
  }
  conformance.set("streams", std::move(streams));
  reply.set("conformance", std::move(conformance));

  // Channel heatmap summary: the busiest channels by utilization
  // (sum of length/period of the streams crossing each).
  constexpr std::size_t kMaxChannels = 16;
  struct ChannelRow {
    topo::ChannelId channel;
    std::size_t streams;
    double utilization;
  };
  std::vector<ChannelRow> busy;
  for (std::size_t c = 0; c < static_cast<std::size_t>(topo_.num_channels());
       ++c) {
    const auto ch = static_cast<topo::ChannelId>(c);
    const std::vector<core::AdmissionController::Handle> on =
        engine.handles_on_channel(ch);
    if (on.empty()) {
      continue;
    }
    double util = 0.0;
    for (const auto h : on) {
      const core::MessageStream* s = engine.find(h);
      if (s != nullptr && s->period > 0) {
        util += static_cast<double>(s->length) /
                static_cast<double>(s->period);
      }
    }
    busy.push_back({ch, on.size(), util});
  }
  std::sort(busy.begin(), busy.end(),
            [](const ChannelRow& a, const ChannelRow& b) {
              if (a.utilization != b.utilization) {
                return a.utilization > b.utilization;
              }
              return a.channel < b.channel;
            });
  Json channels_json = Json::object();
  channels_json.set("count",
                    static_cast<std::int64_t>(topo_.num_channels()));
  channels_json.set("occupied", static_cast<std::int64_t>(busy.size()));
  Json busiest = Json::array();
  for (std::size_t i = 0; i < busy.size() && i < kMaxChannels; ++i) {
    const topo::Channel& endpoints = topo_.channels().channel(busy[i].channel);
    Json c = Json::object();
    c.set("channel", static_cast<std::int64_t>(busy[i].channel));
    c.set("src", static_cast<std::int64_t>(endpoints.src));
    c.set("dst", static_cast<std::int64_t>(endpoints.dst));
    c.set("streams", static_cast<std::int64_t>(busy[i].streams));
    c.set("utilization", busy[i].utilization);
    busiest.push_back(std::move(c));
  }
  channels_json.set("busiest", std::move(busiest));
  reply.set("channels", std::move(channels_json));
  return reply;
}

Json Service::do_history_locked(const Json& request) {
  metrics_.histories.inc();
  const Json* series_filter = request.get("series");
  if (series_filter != nullptr && !series_filter->is_array()) {
    return error_reply("HISTORY series must be an array of names");
  }
  std::int64_t since_ms = 0;
  const Json* window = request.get("window_ms");
  if (window != nullptr) {
    if (!window->is_number() || window->as_int() < 0) {
      return error_reply("HISTORY window_ms must be a non-negative integer");
    }
    since_ms = sampler_.now_ms() - window->as_int();
  }
  const auto wanted = [series_filter](const std::string& name) {
    if (series_filter == nullptr) {
      return true;
    }
    for (const Json& n : series_filter->items()) {
      if (n.is_string() && n.as_string() == name) {
        return true;
      }
    }
    return false;
  };
  Json reply = Json::object();
  reply.set("ok", true);
  reply.set("interval_ms",
            static_cast<std::int64_t>(sampler_.interval_ms()));
  reply.set("now_ms", sampler_.now_ms());
  Json out = Json::array();
  for (const obs::TimeSeries* ts : sampler_.series()) {
    if (!wanted(ts->name())) {
      continue;
    }
    Json series = Json::object();
    series.set("name", ts->name());
    Json samples = Json::array();
    for (const obs::TimeSeries::Sample& s : ts->window(since_ms)) {
      Json pair = Json::array();
      pair.push_back(s.t_ms);
      pair.push_back(s.value);
      samples.push_back(std::move(pair));
    }
    series.set("samples", std::move(samples));
    out.push_back(std::move(series));
  }
  reply.set("series", std::move(out));
  return reply;
}

std::uint64_t Service::durable_lsn() const {
  std::lock_guard<std::mutex> lk(mu_);
  return journal_ != nullptr ? journal_->durable_lsn() : 0;
}

std::uint64_t Service::epoch() const {
  std::lock_guard<std::mutex> lk(mu_);
  return journal_ != nullptr ? journal_->epoch() : 1;
}

void Service::set_promote_hook(std::function<void()> hook) {
  std::lock_guard<std::mutex> lk(promote_mu_);
  promote_hook_ = std::move(hook);
}

void Service::note_replica_progress(std::uint64_t primary_durable,
                                    std::uint64_t primary_epoch,
                                    bool connected) {
  replica_primary_durable_.store(primary_durable, std::memory_order_relaxed);
  replica_primary_epoch_.store(primary_epoch, std::memory_order_relaxed);
  replica_connected_.store(connected, std::memory_order_relaxed);
}

void Service::sync_replication_wait(std::uint64_t lsn) {
  Replicator* repl = nullptr;
  {
    std::lock_guard<std::mutex> lk(mu_);
    repl = repl_.get();
  }
  if (repl == nullptr) {
    return;
  }
  // Wake REPL_PULL long-pollers: the record just became durable and is
  // now servable — without this the ship latency rounds up to the
  // poll tick.
  repl->notify();
  if (!options_.sync_replication || is_follower()) {
    return;
  }
  if (!repl->wait_follower_durable(lsn,
                                   options_.sync_replication_timeout_ms)) {
    // Semi-synchronous degrade: the mutation is durable locally and
    // will ship when a follower catches up, but this ack went out
    // without follower coverage — counted, and HEALTH says so.
    registry_
        .counter("wormrt_repl_sync_timeouts_total", {},
                 "Mutation acks that degraded to async replication "
                 "because no follower confirmed durability in time.")
        .inc();
  }
}

bool Service::apply_replicated(const JournalRecord& record,
                               std::string* error) {
  std::lock_guard<std::mutex> lk(mu_);
  if (!is_follower()) {
    *error = "not a follower";
    return false;
  }
  if (journal_ == nullptr) {
    *error = "follower requires a state dir";
    return false;
  }
  // WAL discipline, same as the primary: journal first (under the
  // primary's LSN), engine second.  append_replica fsyncs per record —
  // the durable LSN this follower acks in its next pull must never run
  // ahead of its disk.
  if (!journal_->append_replica(record, error)) {
    return false;
  }
  std::int64_t audit_channel = -1;
  switch (record.type) {
    case JournalRecord::Type::kAdd:
      ctrl_.restore(static_cast<topo::NodeId>(record.entry.src),
                    static_cast<topo::NodeId>(record.entry.dst),
                    static_cast<Priority>(record.entry.priority),
                    record.entry.period, record.entry.length,
                    record.entry.deadline, record.entry.handle,
                    static_cast<int>(record.entry.route_order));
      break;
    case JournalRecord::Type::kRemove:
      ctrl_.remove(record.entry.handle);
      break;
    case JournalRecord::Type::kLinkDown:
    case JournalRecord::Type::kLinkUp: {
      const topo::ChannelId ch = topo_.channel_between(
          static_cast<topo::NodeId>(record.entry.src),
          static_cast<topo::NodeId>(record.entry.dst));
      if (ch == topo::kNoChannel) {
        // Unreachable past the HELLO fingerprint check; refuse to guess.
        *error = "replicated link record names channel " +
                 std::to_string(record.entry.src) + "->" +
                 std::to_string(record.entry.dst) +
                 " which this topology does not have";
        return false;
      }
      audit_channel = static_cast<std::int64_t>(ch);
      if (record.type == JournalRecord::Type::kLinkDown) {
        ctrl_.link_down(ch);
      } else {
        ctrl_.link_up(ch);
      }
      break;
    }
  }
  metrics_.population.set(static_cast<double>(ctrl_.size()));
  registry_
      .counter("wormrt_repl_records_applied_total", {},
               "Replicated journal records applied on this follower.")
      .inc();
  if (audit_ != nullptr) {
    // One line per replicated record, carrying the primary's LSN — the
    // smoke test diffs (lsn, event, handle) against the primary's
    // audit log to prove decision-history equality.
    Json rec = Json::object();
    switch (record.type) {
      case JournalRecord::Type::kAdd:
        rec.set("event", "replicated_add");
        rec.set("handle", record.entry.handle);
        break;
      case JournalRecord::Type::kRemove:
        rec.set("event", "replicated_remove");
        rec.set("handle", record.entry.handle);
        break;
      case JournalRecord::Type::kLinkDown:
        rec.set("event", "replicated_link_down");
        break;
      case JournalRecord::Type::kLinkUp:
        rec.set("event", "replicated_link_up");
        break;
    }
    if (audit_channel >= 0) {
      rec.set("channel", audit_channel);
      rec.set("src", record.entry.src);
      rec.set("dst", record.entry.dst);
    }
    rec.set("lsn", static_cast<std::int64_t>(record.lsn));
    rec.set("durable", true);
    audit_->append(std::move(rec));
  }
  maybe_compact();
  return true;
}

bool Service::bootstrap_replicated(
    std::uint64_t last_lsn, std::uint64_t snapshot_epoch,
    std::int64_t next_handle, const std::vector<JournalEntry>& entries,
    const std::vector<std::pair<std::int64_t, std::int64_t>>& faulted,
    std::string* error) {
  std::lock_guard<std::mutex> lk(mu_);
  if (!is_follower()) {
    *error = "not a follower";
    return false;
  }
  if (journal_ == nullptr) {
    *error = "follower requires a state dir";
    return false;
  }
  // Durable install first (tmp+fsync->rename; the WAL is truncated and
  // the LSN cursor moves to last_lsn+1), then rebuild the engine from
  // scratch exactly like recovery replay.
  if (!journal_->install_snapshot(last_lsn, snapshot_epoch, next_handle,
                                  entries, faulted, error)) {
    return false;
  }
  while (ctrl_.size() > 0) {
    ctrl_.remove(ctrl_.engine().handle_of(static_cast<StreamId>(0)));
  }
  for (std::size_t c = 0;
       c < static_cast<std::size_t>(topo_.num_channels()); ++c) {
    topo_.set_channel_faulted(static_cast<topo::ChannelId>(c), false);
  }
  for (const auto& [src, dst] : faulted) {
    const topo::ChannelId ch = topo_.channel_between(
        static_cast<topo::NodeId>(src), static_cast<topo::NodeId>(dst));
    if (ch == topo::kNoChannel) {
      *error = "bootstrap snapshot faults channel " + std::to_string(src) +
               "->" + std::to_string(dst) +
               " which this topology does not have";
      return false;
    }
    topo_.set_channel_faulted(ch, true);
  }
  for (const JournalEntry& e : entries) {
    ctrl_.restore(static_cast<topo::NodeId>(e.src),
                  static_cast<topo::NodeId>(e.dst),
                  static_cast<Priority>(e.priority), e.period, e.length,
                  e.deadline, e.handle, static_cast<int>(e.route_order));
  }
  ctrl_.set_next_handle(std::max(ctrl_.next_handle(), next_handle));
  metrics_.population.set(static_cast<double>(ctrl_.size()));
  registry_
      .counter("wormrt_repl_snapshots_installed_total", {},
               "Replication bootstrap snapshots installed on this "
               "follower.")
      .inc();
  if (audit_ != nullptr) {
    Json rec = Json::object();
    rec.set("event", "replicated_bootstrap");
    rec.set("lsn", static_cast<std::int64_t>(last_lsn));
    rec.set("epoch", static_cast<std::int64_t>(snapshot_epoch));
    rec.set("entries", static_cast<std::int64_t>(entries.size()));
    audit_->append(std::move(rec));
  }
  return true;
}

Json Service::do_repl_hello(const Json& request) {
  std::int64_t follower_fp = 0, follower_epoch = 0, follower_durable = 0;
  req_int(request, "fingerprint", &follower_fp);
  req_int(request, "epoch", &follower_epoch);
  req_int(request, "durable_lsn", &follower_durable);
  const Json* id = request.get("follower_id");
  const std::string follower_id =
      id != nullptr && id->is_string() ? id->as_string() : "";

  std::lock_guard<std::mutex> lk(mu_);
  if (journal_ == nullptr || repl_ == nullptr) {
    return error_reply("replication requires a state dir");
  }
  if (follower_fp != 0 && topo_.fingerprint() != 0 &&
      static_cast<std::uint64_t>(follower_fp) != topo_.fingerprint()) {
    return error_reply(
        "topology fingerprint mismatch: follower state was issued "
        "against a different fabric");
  }
  const std::uint64_t primary_epoch = journal_->epoch();
  const std::uint64_t primary_durable = journal_->durable_lsn();
  const std::uint64_t f_epoch =
      follower_epoch > 0 ? static_cast<std::uint64_t>(follower_epoch) : 1;
  const std::uint64_t f_durable =
      follower_durable > 0 ? static_cast<std::uint64_t>(follower_durable)
                           : 0;
  // A follower needs a snapshot when its durable LSN predates the
  // buffer floor (those records are gone from memory), or when it
  // carries a deposed epoch's tail past the fence (its local open
  // refused that state; the snapshot replaces it wholesale).
  bool snapshot_needed = f_durable < repl_->floor_lsn();
  if (f_epoch < primary_epoch && f_durable > repl_->fence_lsn()) {
    snapshot_needed = true;
  }
  // Deliberately NOT registered in the follower table here: only
  // REPL_PULL does that.  A pre-flight probe (or a follower that
  // handshakes and dies) must not become a permanently-lagging phantom
  // in the lag gauges and --sync-replication waits.
  Json reply = Json::object();
  reply.set("ok", true);
  reply.set("epoch", static_cast<std::int64_t>(primary_epoch));
  reply.set("fence_lsn", static_cast<std::int64_t>(repl_->fence_lsn()));
  reply.set("durable_lsn", static_cast<std::int64_t>(primary_durable));
  reply.set("snapshot_needed", snapshot_needed);
  return reply;
}

Json Service::do_repl_snapshot(const Json&) {
  std::lock_guard<std::mutex> lk(mu_);
  if (journal_ == nullptr) {
    return error_reply("replication requires a state dir");
  }
  // The shipped state must be a durable cut: resolve everything staged
  // (waiting under mu_ is fine for this rare verb, exactly like
  // LINK_*), roll back failures, and serve engine == durable state.
  catch_up_rollback_locked();
  if (!staged_.empty()) {
    std::string err;
    if (!journal_->wait_durable(staged_.back().lsn, &err)) {
      catch_up_rollback_locked();
    }
    prune_staged_locked();
  }
  std::vector<JournalEntry> entries;
  std::vector<std::pair<std::int64_t, std::int64_t>> faulted;
  capture_state_locked(&entries, &faulted);
  Json reply = Json::object();
  reply.set("ok", true);
  reply.set("lsn", static_cast<std::int64_t>(journal_->durable_lsn()));
  reply.set("epoch", static_cast<std::int64_t>(journal_->epoch()));
  reply.set("next_handle", ctrl_.next_handle());
  Json faults = Json::array();
  for (const auto& [src, dst] : faulted) {
    Json pair = Json::array();
    pair.push_back(src);
    pair.push_back(dst);
    faults.push_back(std::move(pair));
  }
  reply.set("faulted", std::move(faults));
  Json rows = Json::array();
  for (const JournalEntry& e : entries) {
    Json row = Json::array();
    row.push_back(e.handle);
    row.push_back(e.src);
    row.push_back(e.dst);
    row.push_back(e.priority);
    row.push_back(e.period);
    row.push_back(e.length);
    row.push_back(e.deadline);
    row.push_back(e.route_order);
    rows.push_back(std::move(row));
  }
  reply.set("entries", std::move(rows));
  registry_
      .counter("wormrt_repl_snapshots_shipped_total", {},
               "Replication bootstrap snapshots served to followers.")
      .inc();
  return reply;
}

Json Service::do_repl_pull(const Json& request) {
  std::int64_t from_lsn = 0;
  if (!req_int(request, "from_lsn", &from_lsn) || from_lsn <= 0) {
    return error_reply("REPL_PULL needs positive integer from_lsn");
  }
  std::int64_t follower_durable = 0;
  req_int(request, "durable_lsn", &follower_durable);
  std::int64_t wait_ms = 0;
  req_int(request, "wait_ms", &wait_ms);
  wait_ms = std::min<std::int64_t>(std::max<std::int64_t>(wait_ms, 0),
                                   10000);
  const Json* id = request.get("follower_id");
  const std::string follower_id =
      id != nullptr && id->is_string() ? id->as_string() : "";

  Replicator* repl = nullptr;
  Journal* journal = nullptr;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (journal_ == nullptr || repl_ == nullptr) {
      return error_reply("replication requires a state dir");
    }
    repl = repl_.get();
    journal = journal_.get();
  }
  if (!follower_id.empty()) {
    // The pull's durable_lsn IS the ack: it feeds the lag gauges and
    // releases --sync-replication waiters.
    repl->note_follower(
        follower_id,
        follower_durable > 0 ? static_cast<std::uint64_t>(follower_durable)
                             : 0,
        sampler_.now_ms());
  }
  // Ship only the durable prefix: a buffered LSN past the journal's
  // watermark is pending (stop), one inside a failed commit range is
  // rolled back (drop) — wait_durable() is instant for resolved LSNs
  // and reports failed ranges honestly.
  const auto classify = [journal](std::uint64_t lsn) {
    if (lsn > journal->durable_lsn()) {
      return LsnState::kPending;
    }
    std::string err;
    return journal->wait_durable(lsn, &err) ? LsnState::kDurable
                                            : LsnState::kFailed;
  };
  const std::uint64_t from = static_cast<std::uint64_t>(from_lsn);
  std::vector<JournalRecord> records;
  bool snapshot_needed = false;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(wait_ms);
  // Long-poll: re-check after each publish/durability signal (bounded
  // ticks — this occupies one dispatch worker, never the service).
  while (true) {
    records.clear();
    snapshot_needed = false;
    repl->serve(from, classify, &records, &snapshot_needed);
    if (!records.empty() || snapshot_needed ||
        shutdown_.load(std::memory_order_acquire)) {
      break;
    }
    const auto remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            deadline - std::chrono::steady_clock::now())
            .count();
    if (remaining <= 0) {
      break;
    }
    repl->wait_tick(static_cast<int>(std::min<std::int64_t>(remaining, 50)));
  }
  Json reply = Json::object();
  reply.set("ok", true);
  reply.set("epoch", static_cast<std::int64_t>(journal->epoch()));
  reply.set("durable_lsn",
            static_cast<std::int64_t>(journal->durable_lsn()));
  if (snapshot_needed) {
    reply.set("snapshot_needed", true);
    return reply;
  }
  Json out = Json::array();
  for (const JournalRecord& rec : records) {
    Json row = Json::array();
    row.push_back(static_cast<std::int64_t>(rec.type));
    row.push_back(static_cast<std::int64_t>(rec.lsn));
    row.push_back(rec.entry.handle);
    row.push_back(rec.entry.src);
    row.push_back(rec.entry.dst);
    row.push_back(rec.entry.priority);
    row.push_back(rec.entry.period);
    row.push_back(rec.entry.length);
    row.push_back(rec.entry.deadline);
    row.push_back(rec.entry.route_order);
    out.push_back(std::move(row));
  }
  if (!records.empty()) {
    registry_
        .counter("wormrt_repl_records_shipped_total", {},
                 "Journal records shipped to followers via REPL_PULL.")
        .inc(records.size());
  }
  reply.set("records", std::move(out));
  return reply;
}

Json Service::do_promote(const Json&) {
  std::lock_guard<std::mutex> pk(promote_mu_);
  if (!is_follower()) {
    // Idempotent: promoting a primary reports the standing state.
    std::lock_guard<std::mutex> lk(mu_);
    Json reply = Json::object();
    reply.set("ok", true);
    reply.set("role", "primary");
    reply.set("epoch", static_cast<std::int64_t>(
                           journal_ != nullptr ? journal_->epoch() : 1));
    reply.set("durable_lsn",
              static_cast<std::int64_t>(
                  journal_ != nullptr ? journal_->durable_lsn() : 0));
    return reply;
  }
  // Tear the follower loose FIRST: the hook stops and joins the
  // replica session, so no replicated apply can race the epoch bump.
  if (promote_hook_) {
    promote_hook_();
  }
  std::lock_guard<std::mutex> lk(mu_);
  if (journal_ == nullptr) {
    return error_reply("PROMOTE requires a state dir");
  }
  const std::uint64_t deposed_epoch = journal_->epoch();
  const std::uint64_t fence = journal_->durable_lsn();
  journal_->set_epoch(deposed_epoch + 1);
  // The epoch bump is durable only once a snapshot re-stamps both
  // files; until then a crash falls back to the follower epoch, which
  // is safe (the promotion just has to be redone).
  std::vector<JournalEntry> entries;
  std::vector<std::pair<std::int64_t, std::int64_t>> faulted;
  capture_state_locked(&entries, &faulted);
  std::string err;
  if (!journal_->write_snapshot(ctrl_.next_handle(), entries, faulted,
                                &err)) {
    return error_reply("promotion failed: epoch bump not durable: " + err);
  }
  repl_ = std::make_unique<Replicator>(fence, options_.repl_buffer_records);
  repl_->set_fence(deposed_epoch, fence);
  follower_.store(false, std::memory_order_release);
  if (audit_ != nullptr) {
    Json rec = Json::object();
    rec.set("event", "promote");
    rec.set("epoch", static_cast<std::int64_t>(deposed_epoch + 1));
    rec.set("fence_lsn", static_cast<std::int64_t>(fence));
    audit_->append(std::move(rec));
  }
  Json reply = Json::object();
  reply.set("ok", true);
  reply.set("role", "primary");
  reply.set("promoted", true);
  reply.set("epoch", static_cast<std::int64_t>(deposed_epoch + 1));
  reply.set("durable_lsn", static_cast<std::int64_t>(fence));
  return reply;
}

void Service::audit_resolved(PendingAck* ack, bool ok) {
  if (!ack->has_audit || audit_ == nullptr) {
    return;
  }
  if (ack->lsn != 0) {
    ack->audit.set("lsn", static_cast<std::int64_t>(ack->lsn));
    ack->audit.set("durable", ok);
  }
  audit_->append(std::move(ack->audit));
  ack->has_audit = false;
}

std::string Service::prometheus_text() const {
  std::lock_guard<std::mutex> lk(mu_);
  refresh_mirrors();
  return registry_.to_prometheus();
}

std::string Service::stats_text() const {
  std::lock_guard<std::mutex> lk(mu_);
  char buf[512];
  std::string out = "wormrtd stats\n";
  std::snprintf(
      buf, sizeof buf,
      "  population %zu\n"
      "  verbs: %llu requests (%llu admitted, %llu rejected), "
      "%llu removes, %llu queries, %llu explains, %llu snapshots, "
      "%llu stats, %llu errors\n",
      ctrl_.size(),
      static_cast<unsigned long long>(metrics_.requests.value()),
      static_cast<unsigned long long>(metrics_.admitted.value()),
      static_cast<unsigned long long>(metrics_.rejected.value()),
      static_cast<unsigned long long>(metrics_.removes.value()),
      static_cast<unsigned long long>(metrics_.queries.value()),
      static_cast<unsigned long long>(metrics_.explains.value()),
      static_cast<unsigned long long>(metrics_.snapshots.value()),
      static_cast<unsigned long long>(metrics_.stats.value()),
      static_cast<unsigned long long>(metrics_.errors.value()));
  out += buf;
  const auto& es = ctrl_.engine().stats();
  std::snprintf(buf, sizeof buf,
                "  engine: %llu adds, %llu removes, %llu bound recomputes, "
                "%llu dirty marked, %llu edge updates, %llu cache hits\n",
                static_cast<unsigned long long>(es.adds),
                static_cast<unsigned long long>(es.removes),
                static_cast<unsigned long long>(es.bound_recomputes),
                static_cast<unsigned long long>(es.dirty_marked),
                static_cast<unsigned long long>(es.edge_updates),
                static_cast<unsigned long long>(es.bound_cache_hits));
  out += buf;
  const std::uint64_t count = metrics_.latency_us.count();
  if (count > 0) {
    std::snprintf(buf, sizeof buf,
                  "  admission latency (us): mean %.1f  p50 %.1f  p99 %.1f  "
                  "p999 %.1f  max %.1f over %llu decisions\n",
                  metrics_.latency_us.sum() / static_cast<double>(count),
                  metrics_.latency_us.quantile(0.50),
                  metrics_.latency_us.quantile(0.99),
                  metrics_.latency_us.p999(), metrics_.latency_us.max(),
                  static_cast<unsigned long long>(count));
    out += buf;
    out += metrics_.latency_us.merged().render();
  }
  return out;
}

}  // namespace wormrt::svc
