#pragma once

#include <memory>
#include <string>

#include "svc/service.hpp"

/// \file server.hpp
/// The wormrtd socket front end: listens on a Unix-domain or loopback
/// TCP socket, accepts connections, and runs each connection's
/// read-line / dispatch / write-line loop as a task on a
/// util::ThreadPool worker.  The pool bounds concurrent connections;
/// further accepts queue until a worker frees up.  The Service layer is
/// thread-safe, so workers dispatch concurrently.

namespace wormrt::svc {

struct ServerConfig {
  /// When non-empty: listen on this Unix-domain socket path (unlinked on
  /// start and on stop).
  std::string unix_path;
  /// When >= 0 and unix_path is empty: listen on 127.0.0.1:tcp_port
  /// (0 picks an ephemeral port, reported by port()).
  int tcp_port = -1;
  /// Connection workers (>= 1).
  int workers = 4;
};

class Server {
 public:
  Server(Service& service, ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts the accept loop.  False + \p error on
  /// failure.
  bool start(std::string* error);

  /// Actual TCP port (after an ephemeral bind), or -1 for Unix sockets.
  int port() const;

  /// Stops accepting, shuts down live connections, joins all workers.
  /// Idempotent.
  void stop();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Blocking newline-delimited JSON client, used by wormrt-cli, the load
/// generator, and the end-to-end tests.
class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  bool connect_unix(const std::string& path, std::string* error);
  bool connect_tcp(const std::string& host, int port, std::string* error);
  bool connected() const { return fd_ >= 0; }

  /// Sends one request line and blocks for the one response line.
  /// Returns false on transport failure.
  bool call(const std::string& request_line, std::string* response_line,
            std::string* error);

  void close();

 private:
  int fd_ = -1;
  std::string buffer_;  // bytes received past the last response line
};

}  // namespace wormrt::svc
