#pragma once

#include <memory>
#include <string>
#include <vector>

#include "svc/service.hpp"

/// \file server.hpp
/// The wormrtd socket front end: an event-driven epoll server
/// (DESIGN.md §11).  A small set of event-loop threads watches all
/// connections with edge-triggered epoll; sockets are nonblocking, each
/// connection owns an input buffer (incremental newline framing) and an
/// output buffer (in-order replies, flushed as the socket allows), and
/// parsed request lines are handed to a dispatch ThreadPool that runs
/// the Service verbs — so thousands of idle connections cost no threads
/// and a stalled dispatch (e.g. a journal fsync) never blocks accepts
/// or other connections' reads.
///
/// The protocol is pipelined: a client may write any number of
/// newline-framed requests without waiting; responses come back in
/// request order on the same connection (at most one dispatch task per
/// connection is in flight, draining that connection's parsed-line
/// queue FIFO).  Client::call_pipelined sends a whole batch in one
/// write and collects the N responses.
///
/// Overload protection (DESIGN.md §10): request lines are capped at
/// max_line_bytes (a hostile client streaming newline-free garbage gets
/// one error reply and the boot, never unbounded daemon memory),
/// concurrent connections are capped at max_connections (excess clients
/// are shed with `ok:false error:"overloaded"` at accept, which stays
/// responsive under dispatch saturation because accepting and shedding
/// happen on the event loop, never behind the dispatch pool), parsed
/// lines per connection are capped (further input stays in the kernel
/// socket buffer, backpressuring the sender), and idle connections are
/// reaped after idle_timeout_ms by the loop's timer bookkeeping.  Sheds
/// are counted per reason in the service registry
/// (wormrt_server_sheds_total).  stop() wakes every loop through an
/// eventfd, so shutdown is prompt even with open idle connections.

namespace wormrt::svc {

struct ServerConfig {
  /// When non-empty: listen on this Unix-domain socket path (unlinked on
  /// start and on stop).  A pre-existing socket file is connect-probed
  /// first: if a live server answers, start() fails instead of stealing
  /// the address; only a stale (dead) socket is unlinked.
  std::string unix_path;
  /// When >= 0 and unix_path is empty: listen on 127.0.0.1:tcp_port
  /// (0 picks an ephemeral port, reported by port()).
  int tcp_port = -1;
  /// Dispatch workers (>= 1): threads running Service verbs.  The queue
  /// is unbounded but naturally capped at one task per connection.
  int workers = 4;
  /// Event-loop threads (>= 1) sharing the connection population.
  int event_threads = 2;
  /// Per-connection request-line cap in bytes.  A connection whose
  /// buffered partial line exceeds this gets one
  /// `ok:false error:"line too long"` reply and is closed.
  std::size_t max_line_bytes = 1 << 20;
  /// Concurrent-connection cap; clients beyond it get one
  /// `ok:false error:"overloaded"` reply and are closed.  <= 0 = no cap.
  int max_connections = 64;
  /// Close connections that stay silent this long.  <= 0 = never.
  int idle_timeout_ms = 30000;
};

class Server {
 public:
  Server(Service& service, ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts the event loops.  False + \p error on
  /// failure.
  bool start(std::string* error);

  /// Actual TCP port (after an ephemeral bind), or -1 for Unix sockets.
  int port() const;

  /// Stops accepting, wakes every event loop via its eventfd, shuts
  /// down live connections, and joins loops + dispatch workers.
  /// Idempotent, and prompt even with open idle connections.
  void stop();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Retry policy for Client::call_with_retry: exponential backoff with
/// decorrelated jitter (each sleep is drawn uniformly from
/// [base_delay_ms, 3 * previous_sleep], clamped to max_delay_ms), and —
/// by default — retries only idempotent verbs: retrying a REQUEST or
/// REMOVE whose response was lost could double-apply the mutation.
struct RetryPolicy {
  /// Additional attempts after the first (0 = no retries).
  int max_retries = 0;
  int base_delay_ms = 10;
  int max_delay_ms = 1000;
  /// Also retry REQUEST/REMOVE/SHUTDOWN (at-least-once instead of
  /// at-most-once semantics for mutations).
  bool retry_non_idempotent = false;
  /// Seed for the jitter stream (deterministic tests).
  std::uint64_t jitter_seed = 0x9e3779b97f4a7c15ull;
};

/// Blocking newline-delimited JSON client, used by wormrt-cli, the load
/// generator, and the end-to-end tests.  Optional deadlines cover
/// connect and each call; call_with_retry layers reconnect + backoff on
/// top for resilience against restarts and sheds.  TCP connections set
/// TCP_NODELAY: every request is a complete small write and Nagle would
/// serialize the pipelined stream against the server's ack clock.
class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Deadline for connect() and for each call()'s send/recv, applied to
  /// subsequent connects.  <= 0 (default) = block forever.
  void set_timeout_ms(int timeout_ms) { timeout_ms_ = timeout_ms; }

  bool connect_unix(const std::string& path, std::string* error);
  bool connect_tcp(const std::string& host, int port, std::string* error);
  bool connected() const { return fd_ >= 0; }

  /// Failover endpoint list: a comma-separated sequence of endpoint
  /// specs ("unix:PATH", "HOST:PORT", or a bare socket path), tried in
  /// order until one connects.  With a list installed, call_with_retry
  /// additionally rotates to the next endpoint (a) on transport
  /// failure, and (b) when a reply parses as error "not primary" —
  /// rotation on (b) applies to mutations too, because the refusing
  /// node deterministically applied nothing.  This is the client half
  /// of failover: kill the primary, PROMOTE the follower, and clients
  /// holding both endpoints converge on the new primary.
  bool connect_endpoints(const std::string& spec_list, std::string* error);

  /// True when a reply line is a well-formed follower refusal
  /// ({"ok":false,"error":"not primary"}).
  static bool not_primary_reply(const std::string& response_line);

  /// Sends one request line and blocks for the one response line.
  /// Returns false on transport failure (including a deadline expiry
  /// when set_timeout_ms was used).
  bool call(const std::string& request_line, std::string* response_line,
            std::string* error);

  /// Pipelined batch: coalesces all request lines into ONE send, then
  /// collects exactly one response line per request, in request order.
  /// On transport failure \p response_lines holds the responses
  /// received so far (the caller knows how far the server got).
  bool call_pipelined(const std::vector<std::string>& request_lines,
                      std::vector<std::string>* response_lines,
                      std::string* error);

  /// call() with resilience: on transport failure, reconnects to the
  /// last connect_unix/connect_tcp endpoint and retries per \p policy.
  /// Only idempotent verbs (QUERY, EXPLAIN, SNAPSHOT, STATS, METRICS)
  /// are retried unless the policy opts in; non-retryable failures
  /// surface immediately.  Returns the attempt count via \p attempts
  /// when non-null.
  bool call_with_retry(const std::string& request_line,
                       const RetryPolicy& policy, std::string* response_line,
                       std::string* error, int* attempts = nullptr);

  /// True for verbs whose replay cannot change service state.
  static bool idempotent_verb(const std::string& verb);

  void close();

 private:
  bool reconnect(std::string* error);
  bool connect_spec(const std::string& spec, std::string* error);
  bool rotate_endpoint(std::string* error);
  bool apply_timeouts(std::string* error);
  bool read_line(std::string* response_line, std::string* error);

  int fd_ = -1;
  int timeout_ms_ = 0;
  std::string buffer_;  // bytes received past the last response line

  /// Last endpoint, for call_with_retry's reconnect.
  enum class Endpoint { kNone, kUnix, kTcp };
  Endpoint endpoint_ = Endpoint::kNone;
  std::string unix_path_;
  std::string tcp_host_;
  int tcp_port_ = -1;

  /// Failover list from connect_endpoints; empty = single-endpoint.
  std::vector<std::string> endpoints_;
  std::size_t active_endpoint_ = 0;
};

}  // namespace wormrt::svc
