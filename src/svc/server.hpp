#pragma once

#include <memory>
#include <string>

#include "svc/service.hpp"

/// \file server.hpp
/// The wormrtd socket front end: listens on a Unix-domain or loopback
/// TCP socket, accepts connections, and runs each connection's
/// read-line / dispatch / write-line loop as a task on a
/// util::ThreadPool worker.  The pool bounds concurrent connections;
/// further accepts queue until a worker frees up.  The Service layer is
/// thread-safe, so workers dispatch concurrently.
///
/// Overload protection (DESIGN.md §10): request lines are capped at
/// max_line_bytes (a hostile client streaming newline-free garbage gets
/// one error reply and the boot, never unbounded daemon memory),
/// concurrent connections are capped at max_connections (excess clients
/// are shed with `ok:false error:"overloaded"`), idle connections are
/// reaped after idle_timeout_ms, and the worker pool's submit queue is
/// bounded so a connection flood backpressures the acceptor instead of
/// growing an unbounded task queue.  Sheds are counted per reason in
/// the service registry (wormrt_server_sheds_total).

namespace wormrt::svc {

struct ServerConfig {
  /// When non-empty: listen on this Unix-domain socket path (unlinked on
  /// start and on stop).  A pre-existing socket file is connect-probed
  /// first: if a live server answers, start() fails instead of stealing
  /// the address; only a stale (dead) socket is unlinked.
  std::string unix_path;
  /// When >= 0 and unix_path is empty: listen on 127.0.0.1:tcp_port
  /// (0 picks an ephemeral port, reported by port()).
  int tcp_port = -1;
  /// Connection workers (>= 1).
  int workers = 4;
  /// Per-connection request-line cap in bytes.  A connection whose
  /// buffered partial line exceeds this gets one
  /// `ok:false error:"line too long"` reply and is closed.
  std::size_t max_line_bytes = 1 << 20;
  /// Concurrent-connection cap; clients beyond it get one
  /// `ok:false error:"overloaded"` reply and are closed.  <= 0 = no cap.
  int max_connections = 64;
  /// Close connections that stay silent this long, freeing their worker
  /// slot.  <= 0 = never.
  int idle_timeout_ms = 30000;
};

class Server {
 public:
  Server(Service& service, ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts the accept loop.  False + \p error on
  /// failure.
  bool start(std::string* error);

  /// Actual TCP port (after an ephemeral bind), or -1 for Unix sockets.
  int port() const;

  /// Stops accepting, shuts down live connections, joins all workers.
  /// Idempotent.
  void stop();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Retry policy for Client::call_with_retry: exponential backoff with
/// decorrelated jitter (each sleep is drawn uniformly from
/// [base_delay_ms, 3 * previous_sleep], clamped to max_delay_ms), and —
/// by default — retries only idempotent verbs: retrying a REQUEST or
/// REMOVE whose response was lost could double-apply the mutation.
struct RetryPolicy {
  /// Additional attempts after the first (0 = no retries).
  int max_retries = 0;
  int base_delay_ms = 10;
  int max_delay_ms = 1000;
  /// Also retry REQUEST/REMOVE/SHUTDOWN (at-least-once instead of
  /// at-most-once semantics for mutations).
  bool retry_non_idempotent = false;
  /// Seed for the jitter stream (deterministic tests).
  std::uint64_t jitter_seed = 0x9e3779b97f4a7c15ull;
};

/// Blocking newline-delimited JSON client, used by wormrt-cli, the load
/// generator, and the end-to-end tests.  Optional deadlines cover
/// connect and each call; call_with_retry layers reconnect + backoff on
/// top for resilience against restarts and sheds.
class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Deadline for connect() and for each call()'s send/recv, applied to
  /// subsequent connects.  <= 0 (default) = block forever.
  void set_timeout_ms(int timeout_ms) { timeout_ms_ = timeout_ms; }

  bool connect_unix(const std::string& path, std::string* error);
  bool connect_tcp(const std::string& host, int port, std::string* error);
  bool connected() const { return fd_ >= 0; }

  /// Sends one request line and blocks for the one response line.
  /// Returns false on transport failure (including a deadline expiry
  /// when set_timeout_ms was used).
  bool call(const std::string& request_line, std::string* response_line,
            std::string* error);

  /// call() with resilience: on transport failure, reconnects to the
  /// last connect_unix/connect_tcp endpoint and retries per \p policy.
  /// Only idempotent verbs (QUERY, EXPLAIN, SNAPSHOT, STATS, METRICS)
  /// are retried unless the policy opts in; non-retryable failures
  /// surface immediately.  Returns the attempt count via \p attempts
  /// when non-null.
  bool call_with_retry(const std::string& request_line,
                       const RetryPolicy& policy, std::string* response_line,
                       std::string* error, int* attempts = nullptr);

  /// True for verbs whose replay cannot change service state.
  static bool idempotent_verb(const std::string& verb);

  void close();

 private:
  bool reconnect(std::string* error);
  bool apply_timeouts(std::string* error);

  int fd_ = -1;
  int timeout_ms_ = 0;
  std::string buffer_;  // bytes received past the last response line

  /// Last endpoint, for call_with_retry's reconnect.
  enum class Endpoint { kNone, kUnix, kTcp };
  Endpoint endpoint_ = Endpoint::kNone;
  std::string unix_path_;
  std::string tcp_host_;
  int tcp_port_ = -1;
};

}  // namespace wormrt::svc
