#include "route/dor.hpp"

#include <cassert>

namespace wormrt::route {

namespace {

// Shared dimension-order walker: corrects one dimension at a time in the
// order produced by `dim_at` (identity for classic DOR, reversed for the
// fault-detour variant).  The per-ring stepping rule is identical in both
// directions, so the two orders differ only in which channels a given
// (src,dst) pair occupies.
template <typename DimAt>
Path route_dimension_order(const topo::Topology& topo, topo::NodeId src,
                           topo::NodeId dst, DimAt dim_at) {
  assert(src >= 0 && src < topo.num_nodes());
  assert(dst >= 0 && dst < topo.num_nodes());
  Path path;
  path.src = src;
  path.dst = dst;

  topo::Coord at = topo.coord_of(src);
  const topo::Coord goal = topo.coord_of(dst);

  for (int i = 0; i < topo.dimensions(); ++i) {
    const int d = dim_at(i);
    const std::int32_t k = topo.radix(d);
    while (at[static_cast<std::size_t>(d)] != goal[static_cast<std::size_t>(d)]) {
      const std::int32_t cur = at[static_cast<std::size_t>(d)];
      const std::int32_t tgt = goal[static_cast<std::size_t>(d)];
      std::int32_t step;
      if (!topo.wraps(d)) {
        step = tgt > cur ? 1 : -1;
      } else {
        // Shorter way around the ring; ties go the positive direction.
        const std::int32_t fwd = (tgt - cur + k) % k;
        const std::int32_t bwd = (cur - tgt + k) % k;
        step = fwd <= bwd ? 1 : -1;
      }
      topo::Coord next = at;
      next[static_cast<std::size_t>(d)] =
          topo.wraps(d) ? (cur + step + k) % k : cur + step;
      const topo::NodeId from = topo.node_at(at);
      const topo::NodeId to = topo.node_at(next);
      const topo::ChannelId cid = topo.channel_between(from, to);
      assert(cid != topo::kNoChannel);
      path.channels.push_back(cid);
      at = next;
    }
  }
  return path;
}

}  // namespace

Path DimensionOrderRouting::route(const topo::Topology& topo,
                                  topo::NodeId src, topo::NodeId dst) const {
  return route_dimension_order(topo, src, dst, [](int i) { return i; });
}

Path ReverseDimensionOrderRouting::route(const topo::Topology& topo,
                                         topo::NodeId src,
                                         topo::NodeId dst) const {
  const int last = topo.dimensions() - 1;
  return route_dimension_order(topo, src, dst,
                               [last](int i) { return last - i; });
}

}  // namespace wormrt::route
