#pragma once

#include "route/path.hpp"

/// \file fault_aware.hpp
/// Deterministic fault-aware path selection.  A stream is routed on one
/// of exactly two deterministic orders — primary dimension order
/// (ascending dims; X-Y / e-cube) or reversed dimension order (descending
/// dims; Y-X) — and the chosen order is part of the stream's persistent
/// identity: it is journaled with the ADD record so recovery rebuilds the
/// same path bit for bit regardless of what the fault state looked like
/// at admission time.
///
/// Selection policy: take the primary-order path when it avoids every
/// faulted channel, else the reversed-order path when that one does, else
/// fail.  Both orders are deadlock-free (see dor.hpp on why mixing them
/// is safe under per-stream-lane provisioning), and trying exactly two
/// candidates keeps admission decisions reproducible and explainable.

namespace wormrt::route {

/// Route-order discriminants persisted in journals and snapshots.
inline constexpr int kRouteOrderPrimary = 0;   ///< ascending dims (X-Y)
inline constexpr int kRouteOrderReversed = 1;  ///< descending dims (Y-X)

/// True when \p order is one of the two persisted route orders.
inline bool is_route_order(int order) {
  return order == kRouteOrderPrimary || order == kRouteOrderReversed;
}

/// The deterministic path from \p src to \p dst under \p order
/// (kRouteOrderPrimary or kRouteOrderReversed).  Ignores fault state —
/// this is the replay primitive.
Path route_with_order(const topo::Topology& topo, topo::NodeId src,
                      topo::NodeId dst, int order);

/// True when any channel of \p path is currently marked faulted.
bool crosses_faulted(const topo::Topology& topo, const Path& path);

/// Result of fault-aware selection.
struct FaultAwarePath {
  Path path;
  int route_order = kRouteOrderPrimary;
};

/// Picks the first of {primary, reversed} whose path avoids every faulted
/// channel; false (and \p out untouched) when both orders cross a fault.
bool route_avoiding_faults(const topo::Topology& topo, topo::NodeId src,
                           topo::NodeId dst, FaultAwarePath* out);

}  // namespace wormrt::route
