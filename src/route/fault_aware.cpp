#include "route/fault_aware.hpp"

#include <cassert>

#include "route/dor.hpp"

namespace wormrt::route {

Path route_with_order(const topo::Topology& topo, topo::NodeId src,
                      topo::NodeId dst, int order) {
  assert(is_route_order(order));
  if (order == kRouteOrderReversed) {
    static const ReverseDimensionOrderRouting kReversed;
    return kReversed.route(topo, src, dst);
  }
  static const DimensionOrderRouting kPrimary;
  return kPrimary.route(topo, src, dst);
}

bool crosses_faulted(const topo::Topology& topo, const Path& path) {
  for (const auto cid : path.channels) {
    if (topo.channels().is_faulted(cid)) {
      return true;
    }
  }
  return false;
}

bool route_avoiding_faults(const topo::Topology& topo, topo::NodeId src,
                           topo::NodeId dst, FaultAwarePath* out) {
  for (const int order : {kRouteOrderPrimary, kRouteOrderReversed}) {
    Path candidate = route_with_order(topo, src, dst, order);
    if (!crosses_faulted(topo, candidate)) {
      out->path = std::move(candidate);
      out->route_order = order;
      return true;
    }
  }
  return false;
}

}  // namespace wormrt::route
