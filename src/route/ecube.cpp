#include "route/ecube.hpp"

// E-cube is dimension-order routing on a binary coordinate system; all
// behaviour lives in DimensionOrderRouting.  This translation unit exists
// so the class has a home for future hypercube-specific extensions
// (e.g. fault-tolerant e-cube variants).

namespace wormrt::route {}  // namespace wormrt::route
