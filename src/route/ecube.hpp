#pragma once

#include "route/dor.hpp"

/// \file ecube.hpp
/// E-cube routing for hypercubes: resolve the differing address bits from
/// least-significant to most-significant.  This is dimension-order
/// routing on the radix-2 coordinate system, so the implementation simply
/// reuses DOR; the class exists to match the routing vocabulary of the
/// wormhole literature the paper builds on.

namespace wormrt::route {

class EcubeRouting : public DimensionOrderRouting {
 public:
  std::string name() const override { return "e-cube"; }
};

}  // namespace wormrt::route
