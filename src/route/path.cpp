#include "route/path.hpp"

#include <algorithm>

namespace wormrt::route {

bool is_valid_walk(const topo::Topology& topo, const Path& path) {
  if (path.src < 0 || path.src >= topo.num_nodes() || path.dst < 0 ||
      path.dst >= topo.num_nodes()) {
    return false;
  }
  topo::NodeId at = path.src;
  for (const auto cid : path.channels) {
    if (cid < 0 || static_cast<std::size_t>(cid) >= topo.num_channels()) {
      return false;
    }
    const auto& ch = topo.channels().channel(cid);
    if (ch.src != at) {
      return false;
    }
    at = ch.dst;
  }
  return at == path.dst;
}

bool shares_channel(const Path& a, const Path& b) {
  // Paths are short (O(network diameter)); a sorted-copy intersection is
  // cheaper than hashing at these sizes and allocation-free would not
  // matter off the hot path.
  std::vector<topo::ChannelId> sa = a.channels;
  std::sort(sa.begin(), sa.end());
  for (const auto cid : b.channels) {
    if (std::binary_search(sa.begin(), sa.end(), cid)) {
      return true;
    }
  }
  return false;
}

std::vector<topo::ChannelId> shared_channels(const Path& a, const Path& b) {
  std::vector<topo::ChannelId> sb = b.channels;
  std::sort(sb.begin(), sb.end());
  std::vector<topo::ChannelId> out;
  for (const auto cid : a.channels) {
    if (std::binary_search(sb.begin(), sb.end(), cid)) {
      out.push_back(cid);
    }
  }
  return out;
}

}  // namespace wormrt::route
