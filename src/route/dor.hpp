#pragma once

#include "route/routing.hpp"

/// \file dor.hpp
/// Dimension-order routing (DOR).  Corrects coordinates one dimension at
/// a time, lowest dimension first; on a 2-D mesh this is exactly the
/// paper's X-Y routing, which is deadlock-free on meshes.  On tori it
/// takes the shorter way around each ring (ties broken toward the
/// positive direction); note that wraparound rings need extra VC classes
/// for deadlock freedom in a real router — the simulator provides
/// priority VCs, and the analysis is routing-agnostic.

namespace wormrt::route {

class DimensionOrderRouting : public RoutingAlgorithm {
 public:
  Path route(const topo::Topology& topo, topo::NodeId src,
             topo::NodeId dst) const override;

  std::string name() const override { return "dimension-order(X-Y)"; }
};

/// Dimension-order routing with the dimensions corrected highest first
/// (Y-X on a 2-D mesh).  Deadlock-free by the same turn argument as DOR;
/// used as the single deterministic detour when a primary-order path
/// crosses a faulted link.  Mixing both orders in one fabric stays
/// deadlock-free here because provisioning is per-stream-lane (each
/// admitted stream owns a private VC class end to end — the paper's
/// priority-VC model, and flitsim's kPerStreamLane), so the two routing
/// subnetworks never share wait-for edges.
class ReverseDimensionOrderRouting : public RoutingAlgorithm {
 public:
  Path route(const topo::Topology& topo, topo::NodeId src,
             topo::NodeId dst) const override;

  std::string name() const override { return "dimension-order(Y-X)"; }
};

/// Alias emphasising the 2-D mesh reading used throughout the paper.
using XYRouting = DimensionOrderRouting;

}  // namespace wormrt::route
