#pragma once

#include "route/path.hpp"

/// \file routing.hpp
/// Deterministic routing algorithms.  The paper assumes a static,
/// deterministic, deadlock-free routing function (X-Y for meshes); the
/// analysis and the simulator both consume the resulting Path objects,
/// which guarantees they reason about identical channel footprints.

namespace wormrt::route {

class RoutingAlgorithm {
 public:
  virtual ~RoutingAlgorithm() = default;

  /// Computes the (unique) path from \p src to \p dst.
  /// Requires both ids to be valid nodes of \p topo.
  virtual Path route(const topo::Topology& topo, topo::NodeId src,
                     topo::NodeId dst) const = 0;

  virtual std::string name() const = 0;
};

}  // namespace wormrt::route
