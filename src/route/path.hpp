#pragma once

#include <vector>

#include "topo/topology.hpp"

/// \file path.hpp
/// A routing path: the ordered list of directed physical channels a
/// message traverses from source to destination.  Paths are the resource
/// footprint the delay-bound analysis reasons about: two message streams
/// block each other directly iff their paths share a directed channel.

namespace wormrt::route {

struct Path {
  topo::NodeId src = topo::kNoNode;
  topo::NodeId dst = topo::kNoNode;
  /// Channels in traversal order; empty iff src == dst.
  std::vector<topo::ChannelId> channels;

  /// Number of physical-channel hops.
  int hops() const { return static_cast<int>(channels.size()); }
};

/// Validates that \p path is a connected walk from src to dst in \p topo.
bool is_valid_walk(const topo::Topology& topo, const Path& path);

/// True when the two paths use at least one common directed channel
/// (the paper's "direct blocking" relation between streams).
bool shares_channel(const Path& a, const Path& b);

/// The directed channels used by both paths, in a's traversal order.
std::vector<topo::ChannelId> shared_channels(const Path& a, const Path& b);

}  // namespace wormrt::route
