#include "core/hpset.hpp"

#include <algorithm>
#include <cassert>
#include <deque>

namespace wormrt::core {

BlockingAnalysis::BlockingAnalysis(const StreamSet& streams,
                                   BlockingOptions options)
    : n_(streams.size()), blocks_(n_ * n_, 0), hp_sets_(n_) {
  // Pairwise direct-blocking relation from resource overlap + priority.
  for (std::size_t a = 0; a < n_; ++a) {
    for (std::size_t b = a + 1; b < n_; ++b) {
      const auto& sa = streams[static_cast<StreamId>(a)];
      const auto& sb = streams[static_cast<StreamId>(b)];
      const bool overlap =
          route::shares_channel(sa.path, sb.path) ||
          (options.ejection_port_overlap && sa.dst == sb.dst) ||
          (options.injection_port_overlap && sa.src == sb.src);
      if (!overlap) {
        continue;
      }
      const bool same_priority_blocks = options.same_priority_blocks;
      const bool a_blocks_b =
          sa.priority > sb.priority ||
          (same_priority_blocks && sa.priority == sb.priority);
      const bool b_blocks_a =
          sb.priority > sa.priority ||
          (same_priority_blocks && sa.priority == sb.priority);
      blocks_[a * n_ + b] = a_blocks_b ? 1 : 0;
      blocks_[b * n_ + a] = b_blocks_a ? 1 : 0;
    }
  }
  build_hp_sets();
}

bool BlockingAnalysis::direct_blocks(StreamId a, StreamId b) const {
  assert(a >= 0 && static_cast<std::size_t>(a) < n_);
  assert(b >= 0 && static_cast<std::size_t>(b) < n_);
  return blocks_[static_cast<std::size_t>(a) * n_ + static_cast<std::size_t>(b)] != 0;
}

void BlockingAnalysis::build_hp_sets() {
  // Predecessor lists of the blocking digraph (who can delay whom).
  std::vector<std::vector<StreamId>> preds(n_);
  for (std::size_t a = 0; a < n_; ++a) {
    for (std::size_t b = 0; b < n_; ++b) {
      if (blocks_[a * n_ + b] != 0) {
        preds[b].push_back(static_cast<StreamId>(a));
      }
    }
  }

  std::vector<std::uint8_t> reached(n_);
  for (std::size_t j = 0; j < n_; ++j) {
    std::fill(reached.begin(), reached.end(), 0);
    // Reverse BFS from j: every reached stream can delay j through some
    // chain of direct-blocking relations.
    std::deque<StreamId> frontier{static_cast<StreamId>(j)};
    reached[j] = 1;
    while (!frontier.empty()) {
      const StreamId v = frontier.front();
      frontier.pop_front();
      for (const StreamId p : preds[static_cast<std::size_t>(v)]) {
        if (!reached[static_cast<std::size_t>(p)]) {
          reached[static_cast<std::size_t>(p)] = 1;
          frontier.push_back(p);
        }
      }
    }

    HpSet& hp = hp_sets_[j];
    for (std::size_t a = 0; a < n_; ++a) {
      if (a == j || !reached[a]) {
        continue;
      }
      HpElement e;
      e.id = static_cast<StreamId>(a);
      if (blocks_[a * n_ + j] != 0) {
        e.mode = BlockMode::kDirect;
      } else {
        e.mode = BlockMode::kIndirect;
        // Intermediates: a's direct successors that also reach j — the
        // streams adjacent to a on its blocking chains toward j.
        for (std::size_t x = 0; x < n_; ++x) {
          if (x != j && x != a && reached[x] && blocks_[a * n_ + x] != 0) {
            e.intermediates.push_back(static_cast<StreamId>(x));
          }
        }
        assert(!e.intermediates.empty() &&
               "indirect element must have a chain toward the stream");
      }
      hp.push_back(std::move(e));
    }
  }
}

void BlockingAnalysis::chains_dfs(StreamId at, StreamId to,
                                  std::vector<StreamId>& stack,
                                  std::vector<std::uint8_t>& on_stack,
                                  std::vector<std::vector<StreamId>>& out) const {
  if (at == to) {
    // The chain is the intervening streams (both endpoints excluded);
    // stack currently holds [from, x1, ..., xk, to].
    out.emplace_back(stack.begin() + 1, stack.end() - 1);
    return;
  }
  for (std::size_t x = 0; x < n_; ++x) {
    const auto xid = static_cast<StreamId>(x);
    if (on_stack[x] || blocks_[static_cast<std::size_t>(at) * n_ + x] == 0) {
      continue;
    }
    stack.push_back(xid);
    on_stack[x] = 1;
    chains_dfs(xid, to, stack, on_stack, out);
    on_stack[x] = 0;
    stack.pop_back();
  }
}

std::vector<std::vector<StreamId>> BlockingAnalysis::blocking_chains(
    StreamId from, StreamId to) const {
  std::vector<std::vector<StreamId>> out;
  std::vector<StreamId> stack{from};
  std::vector<std::uint8_t> on_stack(n_, 0);
  on_stack[static_cast<std::size_t>(from)] = 1;
  chains_dfs(from, to, stack, on_stack, out);
  // Direct edges contribute an empty chain; keep only genuine chains for
  // indirect blocking, but report the empty one too so callers can tell
  // direct reachability apart from none.
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace wormrt::core
