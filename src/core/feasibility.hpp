#pragma once

#include <vector>

#include "core/delay_bound.hpp"

/// \file feasibility.hpp
/// Determine-Feasibility: the paper's top-level algorithm.  Given a set
/// of message streams, compute every stream's delay upper bound and
/// answer whether all deadlines are guaranteed (U_i <= D_i for all i).

namespace wormrt::core {

struct StreamFeasibility {
  StreamId id = kNoStream;
  Time bound = kNoTime;   ///< U_i (kNoTime when not reached within D_i)
  bool ok = false;        ///< U_i != kNoTime and U_i <= D_i
  int hp_direct = 0;      ///< DIRECT elements in HP_i
  int hp_indirect = 0;    ///< INDIRECT elements in HP_i
  int suppressed_instances = 0;
};

struct FeasibilityReport {
  /// The paper's success/fail verdict.
  bool feasible = false;
  /// Per-stream results in stream-id order.
  std::vector<StreamFeasibility> streams;
};

/// Runs Determine-Feasibility over \p streams.  Streams are processed in
/// non-increasing priority order (the GList loop); with the paper's
/// deadline horizon a stream whose bound is not reached by D_i fails.
FeasibilityReport determine_feasibility(const StreamSet& streams,
                                        const AnalysisConfig& config = {});

}  // namespace wormrt::core
