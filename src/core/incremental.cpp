#include "core/incremental.hpp"

#include <algorithm>
#include <cassert>
#include <deque>

#include "core/delay_bound.hpp"
#include "obs/trace.hpp"
#include "topo/topology.hpp"
#include "util/thread_pool.hpp"

namespace wormrt::core {

IncrementalAnalyzer::IncrementalAnalyzer(const topo::Topology& topo,
                                         AnalysisConfig config)
    : topo_(topo),
      config_(config),
      by_channel_(topo.num_channels()),
      by_src_(static_cast<std::size_t>(topo.num_nodes())),
      by_dst_(static_cast<std::size_t>(topo.num_nodes())) {}

bool IncrementalAnalyzer::direct_blocks(StreamId a, StreamId b) const {
  return adj_[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] != 0;
}

std::vector<StreamId> IncrementalAnalyzer::overlap_candidates(
    const MessageStream& s) const {
  std::vector<std::uint8_t> seen(streams_.size(), 0);
  std::vector<StreamId> out;
  const auto consider = [&](const std::vector<StreamId>& list) {
    for (const StreamId other : list) {
      if (!seen[static_cast<std::size_t>(other)]) {
        seen[static_cast<std::size_t>(other)] = 1;
        out.push_back(other);
      }
    }
  };
  for (const topo::ChannelId c : s.path.channels) {
    consider(by_channel_[static_cast<std::size_t>(c)]);
  }
  if (config_.ejection_port_overlap) {
    consider(by_dst_[static_cast<std::size_t>(s.dst)]);
  }
  if (config_.injection_port_overlap) {
    consider(by_src_[static_cast<std::size_t>(s.src)]);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<StreamId> IncrementalAnalyzer::dirty_closure(StreamId x) const {
  const std::size_t n = streams_.size();
  std::vector<std::uint8_t> reached(n, 0);
  reached[static_cast<std::size_t>(x)] = 1;
  std::deque<StreamId> frontier{x};
  while (!frontier.empty()) {
    const StreamId u = frontier.front();
    frontier.pop_front();
    const auto& row = adj_[static_cast<std::size_t>(u)];
    for (std::size_t v = 0; v < n; ++v) {
      if (row[v] != 0 && !reached[v]) {
        reached[v] = 1;
        frontier.push_back(static_cast<StreamId>(v));
      }
    }
  }
  std::vector<StreamId> out;
  for (std::size_t v = 0; v < n; ++v) {
    if (reached[v] && static_cast<StreamId>(v) != x) {
      out.push_back(static_cast<StreamId>(v));
    }
  }
  return out;
}

HpSet IncrementalAnalyzer::hp_set(StreamId j) const {
  const std::size_t n = streams_.size();
  // Reverse BFS from j: every reached stream can delay j through some
  // chain of direct-blocking relations (same construction as
  // BlockingAnalysis::build_hp_sets, restricted to one stream).
  std::vector<std::uint8_t> reached(n, 0);
  reached[static_cast<std::size_t>(j)] = 1;
  std::deque<StreamId> frontier{j};
  while (!frontier.empty()) {
    const StreamId v = frontier.front();
    frontier.pop_front();
    for (std::size_t u = 0; u < n; ++u) {
      if (!reached[u] && adj_[u][static_cast<std::size_t>(v)] != 0) {
        reached[u] = 1;
        frontier.push_back(static_cast<StreamId>(u));
      }
    }
  }

  HpSet hp;
  const auto ja = static_cast<std::size_t>(j);
  for (std::size_t a = 0; a < n; ++a) {
    if (a == ja || !reached[a]) {
      continue;
    }
    HpElement e;
    e.id = static_cast<StreamId>(a);
    if (adj_[a][ja] != 0) {
      e.mode = BlockMode::kDirect;
    } else {
      e.mode = BlockMode::kIndirect;
      for (std::size_t x = 0; x < n; ++x) {
        if (x != ja && x != a && reached[x] && adj_[a][x] != 0) {
          e.intermediates.push_back(static_cast<StreamId>(x));
        }
      }
      assert(!e.intermediates.empty() &&
             "indirect element must have a chain toward the stream");
    }
    hp.push_back(std::move(e));
  }
  return hp;
}

void IncrementalAnalyzer::recompute(const std::vector<StreamId>& ids) {
  OBS_SPAN("incremental_recompute");
  const DelayBoundCalculator calc(streams_, *this, config_);
  // Bounds are independent given the (now settled) digraph; fan them out
  // like the full-recompute path does, each into its own slot.
  util::parallel_for(ids.size(), config_.num_threads, [&](std::size_t k) {
    const StreamId j = ids[k];
    bounds_[static_cast<std::size_t>(j)] = calc.calc_with_hp(j, hp_set(j)).bound;
  });
  stats_.bound_recomputes += ids.size();
}

IncrementalAnalyzer::Mutation IncrementalAnalyzer::add_stream(
    MessageStream stream, Handle forced_handle) {
  const std::size_t n = streams_.size();
  const auto id = static_cast<StreamId>(n);
  stream.id = id;
  assert(stream.path.src == stream.src && stream.path.dst == stream.dst);

  const std::vector<StreamId> neighbours = overlap_candidates(stream);

  // Grow the digraph, then wire the newcomer's edges by the priority rule.
  for (auto& row : adj_) {
    row.push_back(0);
  }
  adj_.emplace_back(n + 1, 0);
  const bool same_blocks = config_.same_priority_blocks;
  for (const StreamId other : neighbours) {
    const auto& so = streams_[other];
    const auto o = static_cast<std::size_t>(other);
    if (so.priority > stream.priority ||
        (same_blocks && so.priority == stream.priority)) {
      adj_[o][n] = 1;
      ++stats_.edge_updates;
    }
    if (stream.priority > so.priority ||
        (same_blocks && so.priority == stream.priority)) {
      adj_[n][o] = 1;
      ++stats_.edge_updates;
    }
  }

  // Register in the overlap index and the population.
  for (const topo::ChannelId c : stream.path.channels) {
    by_channel_[static_cast<std::size_t>(c)].push_back(id);
  }
  by_src_[static_cast<std::size_t>(stream.src)].push_back(id);
  by_dst_[static_cast<std::size_t>(stream.dst)].push_back(id);

  Handle handle;
  if (forced_handle >= 0) {
    assert(index_.find(forced_handle) == index_.end() &&
           "forced handle collides with a live stream");
    handle = forced_handle;
    next_handle_ = std::max(next_handle_, forced_handle + 1);
  } else {
    handle = next_handle_++;
  }
  streams_.add(std::move(stream));
  handles_.push_back(handle);
  bounds_.push_back(kNoTime);
  index_.emplace(handle, id);

  // Dirty set: the streams the newcomer reaches (their HP sets gained the
  // newcomer and possibly new chains through it) plus the newcomer itself.
  std::vector<StreamId> dirty;
  if (force_full_) {
    dirty.reserve(n);
    for (std::size_t v = 0; v < n; ++v) {
      dirty.push_back(static_cast<StreamId>(v));
    }
  } else {
    dirty = dirty_closure(id);
  }

  Mutation result;
  result.handle = handle;
  result.dirty.reserve(dirty.size());
  for (const StreamId v : dirty) {
    result.dirty.push_back(handles_[static_cast<std::size_t>(v)]);
  }
  stats_.dirty_marked += dirty.size();
  ++stats_.adds;

  if (batching_) {
    batch_dirty_.insert(batch_dirty_.end(), result.dirty.begin(),
                        result.dirty.end());
    batch_dirty_.push_back(handle);
    return result;
  }
  dirty.push_back(id);
  recompute(dirty);
  return result;
}

void IncrementalAnalyzer::drop_and_shift(std::vector<StreamId>& list,
                                         StreamId id) {
  std::size_t w = 0;
  for (std::size_t r = 0; r < list.size(); ++r) {
    if (list[r] == id) {
      continue;
    }
    list[w++] = list[r] > id ? list[r] - 1 : list[r];
  }
  list.resize(w);
}

void IncrementalAnalyzer::unindex(StreamId id) {
  // The removed stream appears only in the lists of its own resources,
  // but ids above it shift down everywhere.
  for (auto& list : by_channel_) {
    drop_and_shift(list, id);
  }
  for (auto& list : by_src_) {
    drop_and_shift(list, id);
  }
  for (auto& list : by_dst_) {
    drop_and_shift(list, id);
  }
}

std::optional<IncrementalAnalyzer::Mutation> IncrementalAnalyzer::remove_stream(
    Handle handle) {
  const auto it = index_.find(handle);
  if (it == index_.end()) {
    return std::nullopt;
  }
  const StreamId id = it->second;
  const std::size_t n = streams_.size();

  // Capture the dirty set as handles before ids shift: the streams the
  // victim reached are exactly those whose HP sets lose it.
  Mutation result;
  result.handle = handle;
  std::vector<StreamId> dirty;
  if (force_full_) {
    for (std::size_t v = 0; v < n; ++v) {
      if (static_cast<StreamId>(v) != id) {
        dirty.push_back(static_cast<StreamId>(v));
      }
    }
  } else {
    dirty = dirty_closure(id);
  }
  result.dirty.reserve(dirty.size());
  for (const StreamId v : dirty) {
    result.dirty.push_back(handles_[static_cast<std::size_t>(v)]);
  }

  for (const auto& row : adj_) {
    stats_.edge_updates += row[static_cast<std::size_t>(id)];
  }
  for (const std::size_t b : adj_[static_cast<std::size_t>(id)]) {
    stats_.edge_updates += b;
  }

  // Excise row and column `id`; survivors keep their relative order.
  adj_.erase(adj_.begin() + static_cast<std::ptrdiff_t>(id));
  for (auto& row : adj_) {
    row.erase(row.begin() + static_cast<std::ptrdiff_t>(id));
  }
  unindex(id);
  streams_.remove_stream(id);
  handles_.erase(handles_.begin() + static_cast<std::ptrdiff_t>(id));
  bounds_.erase(bounds_.begin() + static_cast<std::ptrdiff_t>(id));
  index_.erase(it);
  for (auto& [h, i] : index_) {
    if (i > id) {
      --i;
    }
  }

  stats_.dirty_marked += dirty.size();
  ++stats_.removes;

  if (batching_) {
    batch_dirty_.insert(batch_dirty_.end(), result.dirty.begin(),
                        result.dirty.end());
    return result;
  }

  // Re-resolve the dirty streams at their post-shift ids and recompute.
  std::vector<StreamId> ids;
  ids.reserve(result.dirty.size());
  for (const Handle h : result.dirty) {
    ids.push_back(index_.at(h));
  }
  std::sort(ids.begin(), ids.end());
  recompute(ids);
  return result;
}

std::vector<IncrementalAnalyzer::Handle>
IncrementalAnalyzer::handles_on_channel(topo::ChannelId channel) const {
  std::vector<Handle> out;
  const auto& ids = by_channel_.at(static_cast<std::size_t>(channel));
  out.reserve(ids.size());
  for (const StreamId id : ids) {
    out.push_back(handles_[static_cast<std::size_t>(id)]);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void IncrementalAnalyzer::begin_batch() {
  assert(!batching_ && "batches do not nest");
  batching_ = true;
  batch_dirty_.clear();
}

std::vector<IncrementalAnalyzer::Handle> IncrementalAnalyzer::end_batch() {
  assert(batching_);
  batching_ = false;
  std::sort(batch_dirty_.begin(), batch_dirty_.end());
  batch_dirty_.erase(std::unique(batch_dirty_.begin(), batch_dirty_.end()),
                     batch_dirty_.end());
  // Keep only the survivors: handles removed later in the same batch are
  // gone, and their bounds with them.
  std::vector<Handle> alive;
  std::vector<StreamId> ids;
  alive.reserve(batch_dirty_.size());
  ids.reserve(batch_dirty_.size());
  for (const Handle h : batch_dirty_) {
    const auto it = index_.find(h);
    if (it != index_.end()) {
      alive.push_back(h);
      ids.push_back(it->second);
    }
  }
  batch_dirty_.clear();
  std::sort(ids.begin(), ids.end());
  recompute(ids);
  return alive;
}

std::optional<Time> IncrementalAnalyzer::bound(Handle handle) const {
  const auto it = index_.find(handle);
  if (it == index_.end()) {
    return std::nullopt;
  }
  ++stats_.bound_cache_hits;
  return bounds_[static_cast<std::size_t>(it->second)];
}

std::optional<BoundProvenance> IncrementalAnalyzer::explain(
    Handle handle) const {
  const auto it = index_.find(handle);
  if (it == index_.end()) {
    return std::nullopt;
  }
  OBS_SPAN("incremental_explain");
  const StreamId j = it->second;
  const DelayBoundCalculator calc(streams_, *this, config_);
  return explain_bound(calc, j, hp_set(j));
}

const MessageStream* IncrementalAnalyzer::find(Handle handle) const {
  const auto it = index_.find(handle);
  if (it == index_.end()) {
    return nullptr;
  }
  return &streams_[it->second];
}

StreamId IncrementalAnalyzer::id_of(Handle handle) const {
  const auto it = index_.find(handle);
  return it == index_.end() ? kNoStream : it->second;
}

IncrementalAnalyzer::Handle IncrementalAnalyzer::handle_of(StreamId id) const {
  return handles_.at(static_cast<std::size_t>(id));
}

std::vector<Time> IncrementalAnalyzer::full_recompute_bounds() const {
  const BlockingAnalysis blocking(
      streams_, BlockingOptions{config_.same_priority_blocks,
                                config_.ejection_port_overlap,
                                config_.injection_port_overlap});
  const DelayBoundCalculator calc(streams_, blocking, config_);
  std::vector<Time> bounds(streams_.size());
  util::parallel_for(streams_.size(), config_.num_threads, [&](std::size_t j) {
    bounds[j] = calc.calc(static_cast<StreamId>(j)).bound;
  });
  return bounds;
}

}  // namespace wormrt::core
