#include "core/stream_io.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace wormrt::core {

namespace {
constexpr const char* kHeader = "id,src,dst,priority,period,length,deadline";
}

std::string streams_to_csv(const StreamSet& streams) {
  std::string out = kHeader;
  out += '\n';
  char line[160];
  for (const auto& s : streams) {
    std::snprintf(line, sizeof line, "%d,%d,%d,%d,%lld,%lld,%lld\n", s.id,
                  s.src, s.dst, s.priority,
                  static_cast<long long>(s.period),
                  static_cast<long long>(s.length),
                  static_cast<long long>(s.deadline));
    out += line;
  }
  return out;
}

StreamParseResult streams_from_csv(const std::string& csv,
                                   const topo::Topology& topo,
                                   const route::RoutingAlgorithm& routing) {
  StreamParseResult result;
  std::istringstream in(csv);
  std::string line;
  int line_no = 0;

  const auto fail = [&](const std::string& what) {
    result.error = "line " + std::to_string(line_no) + ": " + what;
    return result;
  };

  if (!std::getline(in, line)) {
    ++line_no;
    return fail("empty input");
  }
  ++line_no;
  // Tolerate trailing carriage returns from Windows-edited files.
  while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
    line.pop_back();
  }
  if (line != kHeader) {
    return fail("expected header '" + std::string(kHeader) + "'");
  }

  while (std::getline(in, line)) {
    ++line_no;
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
      line.pop_back();
    }
    if (line.empty()) {
      continue;
    }
    long long fields[7];
    int consumed = 0;
    const int matched = std::sscanf(
        line.c_str(), "%lld,%lld,%lld,%lld,%lld,%lld,%lld%n", &fields[0],
        &fields[1], &fields[2], &fields[3], &fields[4], &fields[5],
        &fields[6], &consumed);
    if (matched != 7 || consumed != static_cast<int>(line.size())) {
      return fail("expected 7 comma-separated integers, got '" + line + "'");
    }
    const auto expect_id = static_cast<StreamId>(result.streams.size());
    if (fields[0] != expect_id) {
      return fail("ids must be dense and ordered (expected " +
                  std::to_string(expect_id) + ")");
    }
    const auto src = static_cast<topo::NodeId>(fields[1]);
    const auto dst = static_cast<topo::NodeId>(fields[2]);
    if (src < 0 || src >= topo.num_nodes() || dst < 0 ||
        dst >= topo.num_nodes()) {
      return fail("node id out of range for " + topo.name());
    }
    if (src == dst) {
      return fail("source equals destination");
    }
    if (fields[4] <= 0 || fields[5] <= 0 || fields[6] <= 0) {
      return fail("period, length and deadline must be positive");
    }
    result.streams.add(make_stream(topo, routing, expect_id, src, dst,
                                   static_cast<Priority>(fields[3]),
                                   fields[4], fields[5], fields[6]));
  }
  const std::string invalid = result.streams.validate();
  if (!invalid.empty()) {
    result.error = invalid;
  }
  return result;
}

bool save_streams(const std::string& path, const StreamSet& streams) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return false;
  }
  out << streams_to_csv(streams);
  return static_cast<bool>(out);
}

StreamParseResult load_streams(const std::string& path,
                               const topo::Topology& topo,
                               const route::RoutingAlgorithm& routing) {
  std::ifstream in(path);
  if (!in) {
    StreamParseResult result;
    result.error = "cannot open '" + path + "'";
    return result;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return streams_from_csv(buffer.str(), topo, routing);
}

}  // namespace wormrt::core
