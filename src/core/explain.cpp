#include "core/explain.hpp"

#include <algorithm>
#include <cstdio>

#include "obs/trace.hpp"

namespace wormrt::core {

BoundProvenance explain_bound(const DelayBoundCalculator& calc, StreamId j,
                              const HpSet& hp) {
  OBS_SPAN("explain_bound");
  const MessageStream& s = calc.streams()[j];
  const AnalysisConfig& cfg = calc.config();

  BoundProvenance p;
  p.stream = j;
  p.deadline = s.deadline;
  p.base_latency = s.latency;

  const DelayBoundResult result = calc.calc_with_hp(j, hp);
  p.bound = result.bound;
  p.horizon_used = result.horizon_used;
  p.suppressed_instances = result.suppressed_instances;

  if (cfg.horizon == HorizonPolicy::kDeadline &&
      s.latency > std::max<Time>(s.deadline, 1)) {
    // calc_with_hp proved infeasibility before building a diagram; there
    // are no interference terms to attribute the failure to.
    p.deadline_pruned = true;
    return p;
  }

  if (cfg.horizon == HorizonPolicy::kExtended) {
    // Replay the doubling schedule to count the resets the search made.
    Time h = std::max<Time>({s.deadline, cfg.initial_horizon, 1});
    while (h < result.horizon_used) {
      h = std::min<Time>(h * 2, cfg.horizon_cap);
      ++p.horizon_doublings;
    }
  }

  // Rebuild the diagram exactly as the reported bound saw it: same
  // horizon, same relaxation decision (the condition mirrors
  // DelayBoundCalculator::evaluate).
  const bool relaxed = cfg.relaxation == IndirectRelaxation::kInstance &&
                       result.indirect_elements > 0 && !cfg.carry_over;
  const TimingDiagram diagram =
      calc.build_diagram(j, hp, result.horizon_used, relaxed);

  // Attribute: slots in [0, bound) partition into L_j free slots plus
  // the disjoint per-row allocations — the sum identity.  Without a
  // bound, report each row's demand across the whole horizon instead.
  const Time end = p.bound != kNoTime ? p.bound : result.horizon_used;
  for (std::size_t r = 0; r < diagram.num_rows(); ++r) {
    const RowSpec& spec = diagram.row_spec(r);
    InterferenceTerm term;
    term.id = spec.stream;
    term.priority = spec.priority;
    term.period = spec.period;
    term.length = spec.length;
    for (const HpElement& e : hp) {
      if (e.id == spec.stream) {
        term.mode = e.mode;
        break;
      }
    }
    term.slots = diagram.allocated_before(r, end);
    term.instances = diagram.num_windows(r);
    for (std::size_t w = 0; w < term.instances; ++w) {
      if (diagram.window_suppressed(r, w)) {
        ++term.suppressed;
      }
    }
    p.interference += term.slots;
    p.terms.push_back(term);
  }
  return p;
}

std::string BoundProvenance::render() const {
  char line[192];
  std::string out;

  if (bound != kNoTime) {
    std::snprintf(line, sizeof line,
                  "U(stream %lld) = %lld  [deadline %lld, horizon %lld, "
                  "%d doublings]\n",
                  static_cast<long long>(stream), static_cast<long long>(bound),
                  static_cast<long long>(deadline),
                  static_cast<long long>(horizon_used), horizon_doublings);
  } else {
    std::snprintf(line, sizeof line,
                  "U(stream %lld) = unbounded within horizon %lld  "
                  "[deadline %lld, %d doublings]\n",
                  static_cast<long long>(stream),
                  static_cast<long long>(horizon_used),
                  static_cast<long long>(deadline), horizon_doublings);
  }
  out += line;

  std::snprintf(line, sizeof line, "+- base latency   %lld\n",
                static_cast<long long>(base_latency));
  out += line;

  if (deadline_pruned) {
    out += "+- infeasible before analysis: the contention-free latency "
           "alone exceeds the deadline\n";
    return out;
  }

  std::snprintf(line, sizeof line,
                "+- interference   %lld  (%zu HP streams, %d instances "
                "suppressed)\n",
                static_cast<long long>(interference), terms.size(),
                suppressed_instances);
  out += line;

  for (const InterferenceTerm& t : terms) {
    std::snprintf(
        line, sizeof line,
        "   +- stream %-4lld %-8s prio %-4lld T=%-6lld C=%-5lld "
        "slots=%-6lld (%zu inst%s",
        static_cast<long long>(t.id),
        t.mode == BlockMode::kDirect ? "direct" : "indirect",
        static_cast<long long>(t.priority), static_cast<long long>(t.period),
        static_cast<long long>(t.length), static_cast<long long>(t.slots),
        t.instances, t.suppressed != 0 ? "" : ")\n");
    out += line;
    if (t.suppressed != 0) {
      std::snprintf(line, sizeof line, ", %zu suppressed)\n", t.suppressed);
      out += line;
    }
  }
  return out;
}

}  // namespace wormrt::core
