#include "core/bdg.hpp"

#include <cassert>
#include <deque>

namespace wormrt::core {

Bdg::Bdg(const DirectBlocking& blocking, StreamId j, const HpSet& hp) {
  ids_.reserve(hp.size() + 1);
  for (const auto& e : hp) {
    ids_.push_back(e.id);
  }
  ids_.push_back(j);

  const std::size_t n = ids_.size();
  adj_.assign(n * n, 0);
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = 0; v < n; ++v) {
      if (u != v && blocking.direct_blocks(ids_[u], ids_[v])) {
        adj_[u * n + v] = 1;
      }
    }
  }

  // BFS from the target node over transposed edges (predecessors).
  levels_.assign(n, -1);
  const std::size_t target = n - 1;
  levels_[target] = 0;
  std::deque<std::size_t> frontier{target};
  while (!frontier.empty()) {
    const std::size_t v = frontier.front();
    frontier.pop_front();
    for (std::size_t u = 0; u < n; ++u) {
      if (levels_[u] < 0 && adj_[u * n + v] != 0) {
        levels_[u] = levels_[v] + 1;
        frontier.push_back(u);
      }
    }
  }
  for (std::size_t u = 0; u < n; ++u) {
    assert(levels_[u] >= 0 && "every HP member must reach the stream");
  }
}

bool Bdg::edge(std::size_t u, std::size_t v) const {
  assert(u < num_nodes() && v < num_nodes());
  return adj_[u * num_nodes() + v] != 0;
}

}  // namespace wormrt::core
