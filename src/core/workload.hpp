#pragma once

#include "core/analysis_config.hpp"
#include "core/message_stream.hpp"
#include "util/rng.hpp"

/// \file workload.hpp
/// The paper's Section 5 workload: periodic streams on a 2-D mesh with
/// X-Y routing, each node the source of at most one stream, destinations
/// spatially uniform, C ~ U[1,40] flits, T ~ U[40,90] flit times (then
/// raised to the computed bound when U_i > T_i), priorities uniform over
/// the available levels.

namespace wormrt::core {

/// Spatial traffic pattern for destination selection.  The paper's
/// evaluation uses kUniform; the others are the standard NoC/multicomputer
/// benchmarking patterns, provided for the extension benches.
enum class TrafficPattern {
  kUniform,          ///< destination uniform over the other nodes (paper)
  kTranspose,        ///< (x, y, ...) -> (y, x, ...): first two coords swap
  kBitReversal,      ///< node id bit-reversed (power-of-two populations)
  kHotspot,          ///< a fraction of streams target one hot node
  kNearestNeighbor,  ///< destination is a random grid neighbour
};

const char* to_string(TrafficPattern pattern);

struct WorkloadParams {
  int num_streams = 20;
  int priority_levels = 1;
  Time period_min = 40;   ///< T_i lower bound (paper: 40)
  Time period_max = 90;   ///< T_i upper bound (paper: 90)
  Time length_min = 1;    ///< C_i lower bound (paper: 1)
  Time length_max = 40;   ///< C_i upper bound (paper: 40)
  std::uint64_t seed = 1;
  TrafficPattern pattern = TrafficPattern::kUniform;
  /// kHotspot only: probability that a stream targets the hot node
  /// (the topology's centre node); the rest stay uniform.
  double hotspot_fraction = 0.3;
};

/// Draws a random stream set per \p params.  Sources are sampled without
/// replacement (at most one stream per node); destinations are uniform
/// over the other nodes; deadlines start equal to periods.  Requires
/// num_streams <= topo.num_nodes().
StreamSet generate_workload(const topo::Topology& topo,
                            const route::RoutingAlgorithm& routing,
                            const WorkloadParams& params);

/// Result of the period-adjustment pass.
struct AdjustResult {
  /// Iterations executed before the fixpoint (or the iteration limit).
  int iterations = 0;
  /// True when a full pass made no further change.
  bool converged = false;
  /// Final per-stream bounds U_i (kNoTime replaced by the horizon cap).
  std::vector<Time> bounds;
};

/// The paper's "if the calculated U_i is larger than T_i, we increased
/// T_i to accommodate all generated traffics": repeatedly computes every
/// bound with the extended horizon and raises T_i (and D_i) to U_i, until
/// no stream changes.  A bound that does not converge below the horizon
/// cap pins the period at the cap (such a stream is effectively
/// aperiodic; this happens only under extreme single-priority overload).
///
/// \p stability_utilization additionally raises T_i until, on every
/// channel of stream i's path, the demand of the streams that do not
/// yield to i (priority above, or equal under same_priority_blocks) plus
/// i's own demand fits within that fraction of the channel bandwidth.
/// This guards against workloads the bound declares schedulable but
/// whose queues diverge: Generate_Init_Diagram drops demand unserved at
/// a window's end, so an overloaded channel looks idle to the analysis
/// while the real backlog grows without bound (see EXPERIMENTS.md).
/// Pass a value <= 0 to disable the guard (the paper's literal text).
AdjustResult adjust_periods_to_bounds(StreamSet& streams,
                                      AnalysisConfig config = {},
                                      int max_iterations = 8,
                                      double stability_utilization = 1.0);

}  // namespace wormrt::core
