#pragma once

#include "core/analysis_config.hpp"
#include "core/message_stream.hpp"

/// \file priority_assign.hpp
/// Priority assignment for message streams.  The paper assumes the
/// designer supplies P_i; in practice priorities must be derived from
/// deadlines.  Three assigners are provided:
///
///  * rate-monotonic      — shorter period = higher priority (the
///    assignment Mutka's related work builds on),
///  * deadline-monotonic  — shorter deadline = higher priority,
///  * Audsley's optimal lowest-level-first search — assigns the lowest
///    priority level to any stream that is feasible there assuming all
///    others outrank it, and recurses upward.  Audsley's argument only
///    needs the analysis to be monotone in the set of higher-priority
///    streams, which holds for the timing-diagram bound, so if any
///    assignment is feasible under the bound, this one finds a feasible
///    one.
///
/// All assigners rewrite MessageStream::priority in place, using one
/// distinct level per stream (the paper's simulation shows tighter
/// bounds the more levels the router affords; see Tables 3-5).

namespace wormrt::core {

/// Shorter period = higher priority; ties by stream id (lower id wins).
/// Returns the number of distinct levels used (== stream count).
int assign_priorities_rate_monotonic(StreamSet& streams);

/// Shorter deadline = higher priority; ties by stream id.
int assign_priorities_deadline_monotonic(StreamSet& streams);

struct AudsleyResult {
  /// True when every level could be filled with a feasible stream; the
  /// stream set then passes Determine-Feasibility with this assignment.
  bool feasible = false;
  /// Bound computations performed (cost of the search).
  int analysis_calls = 0;
};

/// Audsley's optimal priority assignment under the paper's delay bound.
/// On success, priorities are the found assignment; on failure they are
/// left deadline-monotonic (the best heuristic fallback).
AudsleyResult assign_priorities_audsley(StreamSet& streams,
                                        const AnalysisConfig& config = {});

}  // namespace wormrt::core
