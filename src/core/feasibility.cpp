#include "core/feasibility.hpp"

namespace wormrt::core {

FeasibilityReport determine_feasibility(const StreamSet& streams,
                                        const AnalysisConfig& config) {
  FeasibilityReport report;
  report.feasible = true;
  report.streams.resize(streams.size());

  const BlockingAnalysis blocking(
      streams,
      BlockingOptions{config.same_priority_blocks,
                      config.ejection_port_overlap,
                      config.injection_port_overlap});
  const DelayBoundCalculator calc(streams, blocking, config);

  // GList loop: priority levels from highest down; the order does not
  // change any U value (the HP sets are fixed) but is kept for fidelity
  // and so progress reporting mirrors the paper.
  for (const StreamId j : streams.by_priority_desc()) {
    const DelayBoundResult r = calc.calc(j);
    auto& out = report.streams[static_cast<std::size_t>(j)];
    out.id = j;
    out.bound = r.bound;
    out.hp_direct = r.direct_elements;
    out.hp_indirect = r.indirect_elements;
    out.suppressed_instances = r.suppressed_instances;
    out.ok = r.bound != kNoTime && r.bound <= streams[j].deadline;
    if (!out.ok) {
      report.feasible = false;
    }
  }
  return report;
}

}  // namespace wormrt::core
