#include "core/feasibility.hpp"

#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace wormrt::core {

FeasibilityReport determine_feasibility(const StreamSet& streams,
                                        const AnalysisConfig& config) {
  OBS_SPAN("determine_feasibility");
  FeasibilityReport report;
  report.streams.resize(streams.size());

  const BlockingAnalysis blocking(
      streams,
      BlockingOptions{config.same_priority_blocks,
                      config.ejection_port_overlap,
                      config.injection_port_overlap});
  const DelayBoundCalculator calc(streams, blocking, config);

  // GList loop: priority levels from highest down; the order does not
  // change any U value (the HP sets are fixed), which is what lets the
  // per-stream Cal_U calls fan out across threads.  Each result lands in
  // its own pre-sized slot, so every num_threads setting yields the same
  // report bit for bit; the serial num_threads == 1 path keeps the
  // paper's processing order exactly.
  const std::vector<StreamId> order = streams.by_priority_desc();
  util::parallel_for(order.size(), config.num_threads, [&](std::size_t k) {
    const StreamId j = order[k];
    const DelayBoundResult r = calc.calc(j);
    auto& out = report.streams[static_cast<std::size_t>(j)];
    out.id = j;
    out.bound = r.bound;
    out.hp_direct = r.direct_elements;
    out.hp_indirect = r.indirect_elements;
    out.suppressed_instances = r.suppressed_instances;
    out.ok = r.bound != kNoTime && r.bound <= streams[j].deadline;
  });

  report.feasible = true;
  for (const auto& s : report.streams) {
    if (!s.ok) {
      report.feasible = false;
      break;
    }
  }
  return report;
}

}  // namespace wormrt::core
