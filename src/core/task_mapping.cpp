#include "core/task_mapping.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace wormrt::core {

std::string TaskGraph::validate() const {
  if (num_tasks <= 0) {
    return "task graph has no tasks";
  }
  for (std::size_t i = 0; i < flows.size(); ++i) {
    const auto& f = flows[i];
    const std::string tag = "flow " + std::to_string(i) + ": ";
    if (f.src_task < 0 || f.src_task >= num_tasks || f.dst_task < 0 ||
        f.dst_task >= num_tasks) {
      return tag + "task id out of range";
    }
    if (f.src_task == f.dst_task) {
      return tag + "self-flow";
    }
    if (f.period <= 0 || f.length <= 0 || f.deadline <= 0) {
      return tag + "period, length and deadline must be positive";
    }
  }
  return "";
}

StreamSet streams_for_mapping(const TaskGraph& graph,
                              const topo::Topology& topo,
                              const route::RoutingAlgorithm& routing,
                              const std::vector<topo::NodeId>& node_of_task) {
  StreamSet set;
  for (std::size_t i = 0; i < graph.flows.size(); ++i) {
    const auto& f = graph.flows[i];
    MessageStream s = make_stream(
        topo, routing, static_cast<StreamId>(i),
        node_of_task[static_cast<std::size_t>(f.src_task)],
        node_of_task[static_cast<std::size_t>(f.dst_task)], f.priority,
        f.period, f.length, f.deadline);
    s.deadline = std::max(s.deadline, s.latency);
    set.add(std::move(s));
  }
  return set;
}

double mapping_cost(const TaskGraph& graph, const topo::Topology& topo,
                    const route::RoutingAlgorithm& routing,
                    const std::vector<topo::NodeId>& node_of_task) {
  // Per-resource utilization: directed channels, then one injection and
  // one ejection port per node.
  const std::size_t nc = topo.num_channels();
  const auto nn = static_cast<std::size_t>(topo.num_nodes());
  std::vector<double> util(nc + 2 * nn, 0.0);
  for (const auto& f : graph.flows) {
    const double u =
        static_cast<double>(f.length) / static_cast<double>(f.period);
    const route::Path path = routing.route(
        topo, node_of_task[static_cast<std::size_t>(f.src_task)],
        node_of_task[static_cast<std::size_t>(f.dst_task)]);
    for (const auto cid : path.channels) {
      util[static_cast<std::size_t>(cid)] += u;
    }
    util[nc + static_cast<std::size_t>(path.src)] += u;
    util[nc + nn + static_cast<std::size_t>(path.dst)] += u;
  }
  // Sum of squares: contention concentrates cost where bounds loosen.
  return std::inner_product(util.begin(), util.end(), util.begin(), 0.0);
}

namespace {

MappingResult finalize(const TaskGraph& graph, const topo::Topology& topo,
                       const route::RoutingAlgorithm& routing,
                       std::vector<topo::NodeId> placement,
                       int improvements) {
  MappingResult result;
  result.cost = mapping_cost(graph, topo, routing, placement);
  result.streams = streams_for_mapping(graph, topo, routing, placement);
  result.node_of_task = std::move(placement);
  result.improvements = improvements;
  return result;
}

}  // namespace

MappingResult map_tasks_randomly(const TaskGraph& graph,
                                 const topo::Topology& topo,
                                 const route::RoutingAlgorithm& routing,
                                 std::uint64_t seed) {
  assert(graph.validate().empty());
  assert(graph.num_tasks <= topo.num_nodes());
  util::Rng rng(seed);
  const auto nodes =
      rng.sample_without_replacement(topo.num_nodes(), graph.num_tasks);
  std::vector<topo::NodeId> placement(nodes.begin(), nodes.end());
  return finalize(graph, topo, routing, std::move(placement), 0);
}

MappingResult map_tasks(const TaskGraph& graph, const topo::Topology& topo,
                        const route::RoutingAlgorithm& routing,
                        std::uint64_t seed, int swap_budget) {
  assert(graph.validate().empty());
  assert(graph.num_tasks <= topo.num_nodes());
  const auto n_tasks = static_cast<std::size_t>(graph.num_tasks);
  util::Rng rng(seed);

  // Communication weight between task pairs (utilization, symmetric).
  std::vector<double> weight(n_tasks * n_tasks, 0.0);
  std::vector<double> degree(n_tasks, 0.0);
  for (const auto& f : graph.flows) {
    const double u =
        static_cast<double>(f.length) / static_cast<double>(f.period);
    weight[static_cast<std::size_t>(f.src_task) * n_tasks +
           static_cast<std::size_t>(f.dst_task)] += u;
    weight[static_cast<std::size_t>(f.dst_task) * n_tasks +
           static_cast<std::size_t>(f.src_task)] += u;
    degree[static_cast<std::size_t>(f.src_task)] += u;
    degree[static_cast<std::size_t>(f.dst_task)] += u;
  }

  // Greedy seed: heaviest-communicating task at the network centre;
  // each next task (by placed-neighbour weight) goes to the free node
  // minimising weighted hop distance to its placed peers.
  std::vector<topo::NodeId> placement(n_tasks, topo::kNoNode);
  std::vector<std::uint8_t> node_used(static_cast<std::size_t>(topo.num_nodes()), 0);
  std::vector<std::uint8_t> placed(n_tasks, 0);

  const auto hop_distance = [&](topo::NodeId a, topo::NodeId b) {
    return routing.route(topo, a, b).hops();
  };

  for (std::size_t step = 0; step < n_tasks; ++step) {
    // Pick the unplaced task with the most communication to placed
    // tasks (total degree breaks the first-step tie).
    std::size_t best_task = n_tasks;
    double best_key = -1.0;
    for (std::size_t t = 0; t < n_tasks; ++t) {
      if (placed[t]) {
        continue;
      }
      double key = degree[t] * 1e-3;  // small bias toward busy tasks
      for (std::size_t p = 0; p < n_tasks; ++p) {
        if (placed[p]) {
          key += weight[t * n_tasks + p];
        }
      }
      if (key > best_key) {
        best_key = key;
        best_task = t;
      }
    }
    // Best free node: minimise weighted distance to placed peers
    // (the centre node for the very first task).
    topo::NodeId best_node = topo::kNoNode;
    double best_cost = 0.0;
    for (topo::NodeId node = 0; node < topo.num_nodes(); ++node) {
      if (node_used[static_cast<std::size_t>(node)]) {
        continue;
      }
      double cost = 0.0;
      if (step == 0) {
        cost = hop_distance(node, topo.num_nodes() / 2);
      } else {
        for (std::size_t p = 0; p < n_tasks; ++p) {
          if (placed[p] && weight[best_task * n_tasks + p] > 0.0) {
            cost += weight[best_task * n_tasks + p] *
                    (hop_distance(node, placement[p]) +
                     hop_distance(placement[p], node));
          }
        }
      }
      if (best_node == topo::kNoNode || cost < best_cost) {
        best_node = node;
        best_cost = cost;
      }
    }
    placement[best_task] = best_node;
    node_used[static_cast<std::size_t>(best_node)] = 1;
    placed[best_task] = 1;
  }

  // First-improvement hill climbing over task-task swaps and moves to
  // free nodes, on the true contention cost.
  double cost = mapping_cost(graph, topo, routing, placement);
  int improvements = 0;
  for (int iter = 0; iter < swap_budget; ++iter) {
    const auto a = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(n_tasks) - 1));
    std::vector<topo::NodeId> candidate = placement;
    if (rng.bernoulli(0.5) || graph.num_tasks == topo.num_nodes()) {
      // Swap the nodes of two tasks.
      const auto b = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(n_tasks) - 1));
      if (a == b) {
        continue;
      }
      std::swap(candidate[a], candidate[b]);
    } else {
      // Move a task to a random free node.
      const auto node =
          static_cast<topo::NodeId>(rng.uniform_int(0, topo.num_nodes() - 1));
      if (std::find(placement.begin(), placement.end(), node) !=
          placement.end()) {
        continue;
      }
      candidate[a] = node;
    }
    const double candidate_cost =
        mapping_cost(graph, topo, routing, candidate);
    if (candidate_cost < cost - 1e-12) {
      cost = candidate_cost;
      placement = std::move(candidate);
      ++improvements;
    }
  }
  return finalize(graph, topo, routing, std::move(placement), improvements);
}

}  // namespace wormrt::core
