#include "core/paper_example.hpp"

#include "route/dor.hpp"

namespace wormrt::core::paper {

Section44 section44() {
  Section44 ex;
  ex.mesh = std::make_shared<topo::Mesh>(10, 10);
  const route::XYRouting xy;
  const auto node = [&](std::int32_t x, std::int32_t y) {
    return ex.mesh->node_at({x, y});
  };
  // (id, src, dst, priority, period T, length C, deadline D)
  ex.streams.add(make_stream(*ex.mesh, xy, 0, node(7, 3), node(7, 7), 5, 15, 4, 15));
  ex.streams.add(make_stream(*ex.mesh, xy, 1, node(1, 1), node(5, 4), 4, 10, 2, 10));
  ex.streams.add(make_stream(*ex.mesh, xy, 2, node(2, 1), node(7, 5), 3, 40, 4, 40));
  ex.streams.add(make_stream(*ex.mesh, xy, 3, node(4, 1), node(8, 5), 2, 45, 9, 45));
  ex.streams.add(make_stream(*ex.mesh, xy, 4, node(6, 1), node(9, 3), 1, 50, 6, 50));
  return ex;
}

HpSet paper_hp3() {
  HpSet hp;
  HpElement e;
  e.id = 1;
  e.mode = BlockMode::kDirect;
  hp.push_back(e);
  return hp;
}

}  // namespace wormrt::core::paper
