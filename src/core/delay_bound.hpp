#pragma once

#include <optional>

#include "core/analysis_config.hpp"
#include "core/bdg.hpp"
#include "core/hpset.hpp"
#include "core/timing_diagram.hpp"

/// \file delay_bound.hpp
/// Cal_U: the transmission-delay upper bound of one message stream, the
/// kernel of the paper's message-stream feasibility test (Section 4.3).

namespace wormrt::core {

struct DelayBoundResult {
  /// U_j in the paper's 1-indexed convention; kNoTime when the free slots
  /// never accumulate to the network latency within the horizon.
  Time bound = kNoTime;
  /// Horizon (dtime) at which the reported bound was computed.
  Time horizon_used = 0;
  /// Message instances removed by the indirect relaxation.
  int suppressed_instances = 0;
  /// Number of INDIRECT elements in the HP set.
  int indirect_elements = 0;
  /// Number of DIRECT elements in the HP set.
  int direct_elements = 0;
};

/// Computes delay upper bounds for the streams of one StreamSet.
/// The calculator borrows the stream set and blocking analysis; both must
/// outlive it.  Period/deadline edits to the stream set are picked up by
/// subsequent calc() calls (the workload pipeline relies on this), but
/// path or priority edits require a fresh BlockingAnalysis.
class DelayBoundCalculator {
 public:
  DelayBoundCalculator(const StreamSet& streams,
                       const BlockingAnalysis& blocking,
                       AnalysisConfig config = {});

  /// Oracle-only construction: calc_with_hp works against any
  /// DirectBlocking implementation (the incremental engine computes HP
  /// sets itself); calc(), which needs the eagerly built HP sets, is
  /// unavailable on this path.
  DelayBoundCalculator(const StreamSet& streams,
                       const DirectBlocking& blocking, AnalysisConfig config);

  /// Cal_U(j) with the HP set from the blocking analysis.  Requires
  /// construction from a BlockingAnalysis.
  DelayBoundResult calc(StreamId j) const;

  /// Cal_U(j) against an explicit HP set (used to reproduce the paper's
  /// published Section 4.4 variant, whose HP_3 differs from the
  /// channel-overlap-consistent one; see DESIGN.md).
  DelayBoundResult calc_with_hp(StreamId j, const HpSet& hp) const;

  /// Builds the (optionally relaxed) timing diagram of stream \p j at a
  /// fixed horizon — the figures bench renders these as in Figs. 4-9.
  TimingDiagram build_diagram(StreamId j, const HpSet& hp, Time horizon,
                              bool relax) const;

  const AnalysisConfig& config() const { return config_; }
  const StreamSet& streams() const { return streams_; }

 private:
  const StreamSet& streams_;
  const DirectBlocking& blocking_;
  /// Non-null only when constructed from a BlockingAnalysis (calc()).
  const BlockingAnalysis* full_ = nullptr;
  AnalysisConfig config_;

  /// Relaxes (when configured) and scans \p diagram at its current
  /// horizon, filling the bound and suppression fields of \p result.
  void evaluate(StreamId j, const HpSet& hp, TimingDiagram& diagram,
                DelayBoundResult& result) const;
  /// Applies Modify_Diagram to \p diagram; returns suppressed count.
  int relax(StreamId j, const HpSet& hp, TimingDiagram& diagram) const;
  std::vector<RowSpec> make_rows(const HpSet& hp) const;
};

}  // namespace wormrt::core
