#pragma once

#include <optional>
#include <vector>

#include "core/analysis_config.hpp"
#include "core/incremental.hpp"
#include "core/message_stream.hpp"
#include "route/fault_aware.hpp"

/// \file admission.hpp
/// Online admission control ("real-time channel establishment").  The
/// related work the paper builds on (Ferrari & Verma; Kandlur, Shin &
/// Ferrari) establishes real-time channels one at a time, admitting a
/// request only when its deadline can be guaranteed without invalidating
/// any established channel.  This controller realises that procedure
/// over the paper's wormhole delay bound: a request is admitted iff its
/// own bound meets its deadline AND every already-admitted stream's
/// bound still meets its deadline with the newcomer's interference.
///
/// The heavy lifting lives in core::IncrementalAnalyzer: a request is a
/// trial add that recomputes only the dirty closure of the newcomer
/// (rolled back when the decision is a rejection), a teardown releases
/// interference with the same dirty-set recomputation, and bound queries
/// are O(1) cache reads.  Streams outside the dirty set provably keep
/// their bounds, so the decisions are identical to the full-recompute
/// procedure — the kFullRecompute mode keeps that baseline available for
/// benchmarking and the exactness property tests.
///
/// Dynamic fabrics: the controller owns the fault lifecycle of its
/// (borrowed, mutable) topology.  link_down() marks a channel faulted,
/// evicts every established stream whose path crosses it (one batched
/// dirty recompute via the engine's channel-level dirtiness), then tries
/// to re-establish each victim on the deterministic detour order
/// (route/fault_aware.hpp) under the full admission gate, keeping its
/// original handle on success.  link_up() clears the flag; established
/// streams are NOT migrated back — their detour paths stay valid, and
/// new requests simply see the healthy channel again.  Paths are always
/// chosen via the two persisted route orders, so journal replay of the
/// same mutation sequence reproduces every path bit for bit.

namespace wormrt::core {

class AdmissionController {
 public:
  /// Stable handle for an admitted channel (survives removals).
  using Handle = IncrementalAnalyzer::Handle;

  /// kIncremental recomputes only each mutation's dirty closure;
  /// kFullRecompute re-analyses the whole population per decision (the
  /// pre-incremental behaviour — same decisions, more work).
  enum class Mode { kIncremental, kFullRecompute };

  /// Topology and routing are borrowed and must outlive the controller.
  /// The topology is mutable because the controller drives its fault
  /// flags (link_down / link_up); the channel set itself never changes.
  /// \p routing must agree with the primary dimension order — it is the
  /// vocabulary-level name of the paper's routing function, while path
  /// construction goes through the persisted route orders.
  AdmissionController(topo::Topology& topo,
                      const route::RoutingAlgorithm& routing,
                      AnalysisConfig config = {},
                      Mode mode = Mode::kIncremental);

  struct Decision {
    bool admitted = false;
    /// The requester's delay bound in the trial set (kNoTime when it was
    /// not reachable within the deadline).
    Time bound = kNoTime;
    /// Handle of the admitted channel (only when admitted).
    Handle handle = -1;
    /// Established channels whose guarantee the request would have
    /// broken (only when rejected because of them).
    std::vector<Handle> would_break;
    /// No route order avoids the currently faulted channels (rejection
    /// with no trial — bound stays kNoTime).
    bool no_route = false;
    /// PR-7 flit-validity of the bound: U + 2 <= T, i.e. the stream has
    /// slack for the credit round trip and the analytic bound holds
    /// under real credit flow control (EXPERIMENTS.md finding 2).
    /// Reported for every trial; enforced when
    /// AnalysisConfig::credit_slack_guard is on.
    bool flit_valid = false;
    /// Route order the trial used (route/fault_aware.hpp).
    int route_order = route::kRouteOrderPrimary;
  };

  /// Tries to establish a channel.  On admission the stream is
  /// registered and its interference becomes part of later decisions.
  Decision request(topo::NodeId src, topo::NodeId dst, Priority priority,
                   Time period, Time length, Time deadline);

  /// Like request(), additionally capturing the candidate's bound
  /// provenance (see explain.hpp) into *\p provenance when non-null —
  /// measured against the trial population, i.e. BEFORE any rejection
  /// rollback, so a rejected requester still learns which HP streams
  /// pushed its bound past the deadline.
  Decision request(topo::NodeId src, topo::NodeId dst, Priority priority,
                   Time period, Time length, Time deadline,
                   BoundProvenance* provenance);

  /// Provenance of an established channel's current bound; nullopt for
  /// unknown handles.  Diagnostic path — re-runs Cal_U for the stream.
  std::optional<BoundProvenance> explain(Handle handle) const {
    return engine_.explain(handle);
  }

  /// Tears down an established channel, releasing its interference.
  /// Returns false for an unknown handle.
  bool remove(Handle handle);

  /// Outcome of one topology mutation.
  struct LinkMutation {
    topo::ChannelId channel = topo::kNoChannel;
    /// False when the channel was already in the requested fault state
    /// (nothing happened).
    bool changed = false;
    /// Victims torn down for good: no fault-free route order, or the
    /// detour failed the admission gate.
    std::vector<Handle> evicted;
    /// Victims re-established on a detour, keeping their handles.
    std::vector<Handle> rerouted;
    /// Established streams whose bounds were recomputed along the way
    /// (ascending, deduplicated; excludes evicted victims).
    std::vector<Handle> recomputed;
  };

  /// Takes a channel down: marks it faulted, evicts every established
  /// stream crossing it (single batched recompute of the union dirty
  /// closure), then re-admits each victim — ascending handle order, so
  /// replay is deterministic — on the first fault-free route order that
  /// passes the full admission gate (deadline, credit-slack guard when
  /// on, no established guarantee broken).  Victims that fit keep their
  /// original handles; the rest are evicted.
  LinkMutation link_down(topo::ChannelId channel);

  /// Brings a channel back up: clears the fault flag.  Established
  /// streams keep their current (detour) paths and bounds — no
  /// recompute, no migration; the repaired channel is simply available
  /// to future requests and reroutes again.
  LinkMutation link_up(topo::ChannelId channel);

  /// Re-establishes a previously admitted channel exactly as journaled:
  /// no feasibility gate, the recorded \p handle is forced and the
  /// recorded \p route_order rebuilds the identical path without
  /// consulting fault state.  Recovery replays the snapshot population
  /// in engine order and then the post-snapshot journal through this,
  /// which reproduces the pre-crash engine state (population order,
  /// digraph, bounds, handle numbering) bit for bit — rejected requests
  /// leave no trace (their trial handle is released on rollback), so
  /// the admitted mutation sequence fully determines the state.
  void restore(topo::NodeId src, topo::NodeId dst, Priority priority,
               Time period, Time length, Time deadline, Handle handle,
               int route_order = route::kRouteOrderPrimary);

  /// Undoes an admission that could not be made durable (journal append
  /// failed): removes the stream and returns the handle to the pool.
  /// Only valid for the most recently admitted handle.
  void unadmit(Handle handle);

  /// Durable handle-numbering state (see restore()).
  Handle next_handle() const { return engine_.next_handle(); }
  void set_next_handle(Handle handle) { engine_.set_next_handle(handle); }

  std::size_t size() const { return engine_.size(); }

  /// Current delay bound of an established channel, or nullopt for an
  /// unknown handle.  Served from the engine's bound cache — no
  /// re-analysis happens on this path.
  std::optional<Time> bound_of(Handle handle) const;

  /// The established streams as a dense StreamSet (ids are positions,
  /// not handles) — for simulation or reporting.
  StreamSet snapshot() const { return engine_.snapshot(); }

  /// The underlying engine (bound cache, work counters, digraph).
  const IncrementalAnalyzer& engine() const { return engine_; }

  /// The (mutable) fabric this controller administers.
  topo::Topology& topology() { return topo_; }
  const topo::Topology& topology() const { return topo_; }

 private:
  topo::Topology& topo_;
  const route::RoutingAlgorithm& routing_;
  IncrementalAnalyzer engine_;

  /// Shared admission gate: own bound within deadline (+ credit slack
  /// when guarded), and no perturbed established stream loses its
  /// guarantee.  Fills \p would_break when non-null.
  bool gate_ok(Time bound, Time deadline, Time period,
               const std::vector<Handle>& dirty,
               std::vector<Handle>* would_break) const;
};

}  // namespace wormrt::core
