#pragma once

#include <optional>
#include <vector>

#include "core/analysis_config.hpp"
#include "core/incremental.hpp"
#include "core/message_stream.hpp"

/// \file admission.hpp
/// Online admission control ("real-time channel establishment").  The
/// related work the paper builds on (Ferrari & Verma; Kandlur, Shin &
/// Ferrari) establishes real-time channels one at a time, admitting a
/// request only when its deadline can be guaranteed without invalidating
/// any established channel.  This controller realises that procedure
/// over the paper's wormhole delay bound: a request is admitted iff its
/// own bound meets its deadline AND every already-admitted stream's
/// bound still meets its deadline with the newcomer's interference.
///
/// The heavy lifting lives in core::IncrementalAnalyzer: a request is a
/// trial add that recomputes only the dirty closure of the newcomer
/// (rolled back when the decision is a rejection), a teardown releases
/// interference with the same dirty-set recomputation, and bound queries
/// are O(1) cache reads.  Streams outside the dirty set provably keep
/// their bounds, so the decisions are identical to the full-recompute
/// procedure — the kFullRecompute mode keeps that baseline available for
/// benchmarking and the exactness property tests.

namespace wormrt::core {

class AdmissionController {
 public:
  /// Stable handle for an admitted channel (survives removals).
  using Handle = IncrementalAnalyzer::Handle;

  /// kIncremental recomputes only each mutation's dirty closure;
  /// kFullRecompute re-analyses the whole population per decision (the
  /// pre-incremental behaviour — same decisions, more work).
  enum class Mode { kIncremental, kFullRecompute };

  /// Topology and routing are borrowed and must outlive the controller.
  AdmissionController(const topo::Topology& topo,
                      const route::RoutingAlgorithm& routing,
                      AnalysisConfig config = {},
                      Mode mode = Mode::kIncremental);

  struct Decision {
    bool admitted = false;
    /// The requester's delay bound in the trial set (kNoTime when it was
    /// not reachable within the deadline).
    Time bound = kNoTime;
    /// Handle of the admitted channel (only when admitted).
    Handle handle = -1;
    /// Established channels whose guarantee the request would have
    /// broken (only when rejected because of them).
    std::vector<Handle> would_break;
  };

  /// Tries to establish a channel.  On admission the stream is
  /// registered and its interference becomes part of later decisions.
  Decision request(topo::NodeId src, topo::NodeId dst, Priority priority,
                   Time period, Time length, Time deadline);

  /// Like request(), additionally capturing the candidate's bound
  /// provenance (see explain.hpp) into *\p provenance when non-null —
  /// measured against the trial population, i.e. BEFORE any rejection
  /// rollback, so a rejected requester still learns which HP streams
  /// pushed its bound past the deadline.
  Decision request(topo::NodeId src, topo::NodeId dst, Priority priority,
                   Time period, Time length, Time deadline,
                   BoundProvenance* provenance);

  /// Provenance of an established channel's current bound; nullopt for
  /// unknown handles.  Diagnostic path — re-runs Cal_U for the stream.
  std::optional<BoundProvenance> explain(Handle handle) const {
    return engine_.explain(handle);
  }

  /// Tears down an established channel, releasing its interference.
  /// Returns false for an unknown handle.
  bool remove(Handle handle);

  /// Re-establishes a previously admitted channel exactly as journaled:
  /// no feasibility gate, the recorded \p handle is forced.  Recovery
  /// replays the snapshot population in engine order and then the
  /// post-snapshot journal through this, which reproduces the pre-crash
  /// engine state (population order, digraph, bounds, handle numbering)
  /// bit for bit — rejected requests leave no trace (their trial handle
  /// is released on rollback), so the admitted mutation sequence fully
  /// determines the state.
  void restore(topo::NodeId src, topo::NodeId dst, Priority priority,
               Time period, Time length, Time deadline, Handle handle);

  /// Undoes an admission that could not be made durable (journal append
  /// failed): removes the stream and returns the handle to the pool.
  /// Only valid for the most recently admitted handle.
  void unadmit(Handle handle);

  /// Durable handle-numbering state (see restore()).
  Handle next_handle() const { return engine_.next_handle(); }
  void set_next_handle(Handle handle) { engine_.set_next_handle(handle); }

  std::size_t size() const { return engine_.size(); }

  /// Current delay bound of an established channel, or nullopt for an
  /// unknown handle.  Served from the engine's bound cache — no
  /// re-analysis happens on this path.
  std::optional<Time> bound_of(Handle handle) const;

  /// The established streams as a dense StreamSet (ids are positions,
  /// not handles) — for simulation or reporting.
  StreamSet snapshot() const { return engine_.snapshot(); }

  /// The underlying engine (bound cache, work counters, digraph).
  const IncrementalAnalyzer& engine() const { return engine_; }

 private:
  const topo::Topology& topo_;
  const route::RoutingAlgorithm& routing_;
  IncrementalAnalyzer engine_;
};

}  // namespace wormrt::core
