#pragma once

#include <optional>
#include <vector>

#include "core/analysis_config.hpp"
#include "core/message_stream.hpp"

/// \file admission.hpp
/// Online admission control ("real-time channel establishment").  The
/// related work the paper builds on (Ferrari & Verma; Kandlur, Shin &
/// Ferrari) establishes real-time channels one at a time, admitting a
/// request only when its deadline can be guaranteed without invalidating
/// any established channel.  This controller realises that procedure
/// over the paper's wormhole delay bound: a request is admitted iff its
/// own bound meets its deadline AND every already-admitted stream's
/// bound still meets its deadline with the newcomer's interference.

namespace wormrt::core {

class AdmissionController {
 public:
  /// Stable handle for an admitted channel (survives removals).
  using Handle = std::int64_t;

  /// Topology and routing are borrowed and must outlive the controller.
  AdmissionController(const topo::Topology& topo,
                      const route::RoutingAlgorithm& routing,
                      AnalysisConfig config = {});

  struct Decision {
    bool admitted = false;
    /// The requester's delay bound in the trial set (kNoTime when it was
    /// not reachable within the deadline).
    Time bound = kNoTime;
    /// Handle of the admitted channel (only when admitted).
    Handle handle = -1;
    /// Established channels whose guarantee the request would have
    /// broken (only when rejected because of them).
    std::vector<Handle> would_break;
  };

  /// Tries to establish a channel.  On admission the stream is
  /// registered and its interference becomes part of later decisions.
  Decision request(topo::NodeId src, topo::NodeId dst, Priority priority,
                   Time period, Time length, Time deadline);

  /// Tears down an established channel, releasing its interference.
  /// Returns false for an unknown handle.
  bool remove(Handle handle);

  std::size_t size() const { return entries_.size(); }

  /// Current delay bound of an established channel (recomputed against
  /// the present population), or nullopt for an unknown handle.
  std::optional<Time> bound_of(Handle handle) const;

  /// The established streams as a dense StreamSet (ids are positions,
  /// not handles) — for simulation or reporting.
  StreamSet snapshot() const;

 private:
  const topo::Topology& topo_;
  const route::RoutingAlgorithm& routing_;
  AnalysisConfig config_;
  Handle next_handle_ = 0;

  struct Entry {
    Handle handle;
    MessageStream stream;  // id rewritten to the dense position on use
  };
  std::vector<Entry> entries_;

  StreamSet build_set(const MessageStream* extra) const;
  /// Bounds for every stream of \p set, deadline-horizon semantics.
  std::vector<Time> bounds_for(const StreamSet& set) const;
};

}  // namespace wormrt::core
