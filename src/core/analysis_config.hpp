#pragma once

#include <string>

#include "util/types.hpp"

/// \file analysis_config.hpp
/// Knobs of the delay-bound analysis.  The defaults reproduce the paper's
/// algorithm (Section 4); the alternatives exist for the ablation benches.

namespace wormrt::core {

/// How indirect HP elements are relaxed by Modify_Diagram.
enum class IndirectRelaxation {
  /// Skip Modify_Diagram entirely: every HP element is treated as a
  /// direct blocker (strictly more pessimistic bound).
  kNone,
  /// The paper's relaxation at the granularity its figures show: a whole
  /// message instance of an indirect element is removed when none of its
  /// intermediate streams is active (ALLOCATED or WAITING) during any
  /// slot of that instance's footprint; rows below are then re-allocated
  /// ("compacted", Fig. 9).
  kInstance,
};

/// How Cal_U chooses its timing-diagram horizon.
enum class HorizonPolicy {
  /// The paper's rule: scan exactly up to the stream's deadline D_j and
  /// report failure (-1) if the bound is not reached by then.
  kDeadline,
  /// Extended search used by the workload pipeline ("if U_i > T_i we
  /// increased T_i"): start at max(D_j, initial) and keep doubling up to
  /// `horizon_cap` until the bound converges.
  kExtended,
};

struct AnalysisConfig {
  IndirectRelaxation relaxation = IndirectRelaxation::kInstance;
  HorizonPolicy horizon = HorizonPolicy::kDeadline;

  /// Whether equal-priority streams block each other (they cannot preempt
  /// one another, so they must: this is what makes the single-priority
  /// bounds of Tables 1-2 loose).  Disabling it models an idealised
  /// fully-ordered priority space.
  bool same_priority_blocks = true;

  /// Treat node ejection/injection ports as shared resources in the
  /// blocking relation (one-port router model; the paper ignores them —
  /// disable both for the literal paper relation).
  bool ejection_port_overlap = true;
  bool injection_port_overlap = true;

  /// When an instance of an HP element cannot obtain its C slots inside
  /// its own period window, the paper's Generate_Init_Diagram drops the
  /// remainder at the window end.  With carry-over enabled the unserved
  /// demand backlogs into following windows instead (strictly more
  /// pessimistic, never optimistic).
  bool carry_over = false;

  /// First horizon tried under kExtended (raised to D_j when smaller).
  Time initial_horizon = 4096;

  /// Hard ceiling for the kExtended horizon search.  A bound that does
  /// not converge below the cap is reported as not found.
  Time horizon_cap = Time{1} << 18;

  /// PR-7 finding 2 (EXPERIMENTS.md): under real credit flow control a
  /// zero-slack stream (U_i + 2 > T_i) backlogs — the two-flit-time
  /// credit round trip eats the slack the bound says it has — so its
  /// analytic bound, while correct in the paper's model, is not flit
  /// valid.  With the guard on, admission additionally requires
  /// U + 2 <= T for the candidate and for every established stream the
  /// decision perturbs.  Off by default for paper-table reproduction;
  /// wormrtd turns it on unless --no-credit-slack-guard.
  bool credit_slack_guard = false;

  /// Modelled per-VC flit-buffer depth of the fabric the bounds are
  /// issued against.  PR-7 finding 3 (EXPERIMENTS.md): depth 1 cannot
  /// sustain one-flit-per-cycle pipelining (latency degrades to
  /// h + 2(C-1)), which breaks the classic backend's L_i = h + C - 1
  /// model — validate_analysis_config() rejects depth < 2.
  int vc_buffer_depth = 2;

  /// Threads used to fan out the per-stream Cal_U calls of
  /// determine_feasibility / AdmissionController (and the replications of
  /// the table benches).  1 = the serial paper-fidelity path (default);
  /// 0 = one thread per hardware core; N = exactly N threads.  Every
  /// setting produces bitwise-identical results — streams are dealt out
  /// dynamically but each result lands in its own pre-sized slot.
  int num_threads = 1;
};

/// Validates a config against the classic (paper) backend's model
/// assumptions.  Returns "" when consistent, else an explanation suitable
/// for a startup hard error.  Today's single check: vc_buffer_depth < 2
/// breaks the L_i = h + C - 1 latency model (EXPERIMENTS.md finding 3).
inline std::string validate_analysis_config(const AnalysisConfig& config) {
  if (config.vc_buffer_depth < 2) {
    return "vc_buffer_depth " + std::to_string(config.vc_buffer_depth) +
           " is unsound for the classic backend: depth-1 VC buffers cannot "
           "sustain one-flit-per-cycle pipelining, so real latency is "
           "h + 2(C-1) while the analysis assumes L_i = h + C - 1 "
           "(see EXPERIMENTS.md, flit-accurate finding 3); use depth >= 2";
  }
  return "";
}

}  // namespace wormrt::core
