#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/types.hpp"

/// \file timing_diagram.hpp
/// The slot table at the centre of Cal_U.  One row per HP element, in
/// non-increasing priority order; the column index is time (flit times).
/// Row r allocates C slots per period window among the slots left FREE by
/// the rows above it; slots it scans while BUSY are WAITING (preempted).
/// The bottom of the diagram — slots allocated by no row — is the free
/// time the analysed stream can use (Generate_Init_Diagram of the paper).
///
/// Modify_Diagram is realised by suppress-and-rebuild: suppressing a
/// window of a row removes that message instance's demand, and rebuilding
/// the rows below re-allocates ("compacts") them into the freed slots.
///
/// Storage is bit-packed: each row keeps two 64-slot-per-word bitmaps
/// (ALLOCATED and WAITING; FREE is the absence of both), and `busy_` is
/// the union of the allocation bitmaps.  Allocation, rebuild, relaxation
/// and free-slot accounting all run word-at-a-time with popcount/ctz
/// instead of byte-at-a-time, and `reset()` lets the doubling-horizon
/// search of Cal_U reuse one diagram's buffers across horizons.

namespace wormrt::core {

/// Slot states, matching the paper's Section 4.2 cell values.
enum class Slot : std::uint8_t {
  kFree = 0,   ///< usable by lower-priority traffic
  kWaiting,    ///< the row's instance is preempted at this slot
  kAllocated,  ///< the row's instance transmits at this slot
};

/// Static description of one diagram row.
struct RowSpec {
  StreamId stream = kNoStream;  ///< for reporting only
  Priority priority = 0;        ///< for reporting only
  Time period = 0;              ///< T of the HP element
  Time length = 0;              ///< C of the HP element
};

class TimingDiagram {
 public:
  /// \p rows must be ordered by non-increasing priority (ties broken by
  /// ascending stream id).  \p horizon is the paper's dtime.  With
  /// \p carry_over, demand an instance could not serve inside its window
  /// backlogs into the following windows instead of being dropped.
  TimingDiagram(std::vector<RowSpec> rows, Time horizon, bool carry_over);

  /// Rebuilds the initial diagram at a new horizon, clearing any
  /// suppression, but reusing the existing buffers where possible — the
  /// doubling-horizon loop of Cal_U calls this instead of reconstructing.
  void reset(Time horizon);

  std::size_t num_rows() const { return rows_.size(); }
  Time horizon() const { return horizon_; }
  const RowSpec& row_spec(std::size_t r) const { return rows_.at(r); }

  Slot at(std::size_t r, Time t) const {
    const std::size_t w = word_of(t);
    const std::uint64_t bit = bit_of(t);
    if (alloc_[r * words_ + w] & bit) {
      return Slot::kAllocated;
    }
    return (wait_[r * words_ + w] & bit) ? Slot::kWaiting : Slot::kFree;
  }

  /// ALLOCATED or WAITING — the row's stream "exists" at \p t in the
  /// sense of the paper's Fig. 6 discussion.
  bool row_active(std::size_t r, Time t) const {
    const std::size_t w = word_of(t);
    return ((alloc_[r * words_ + w] | wait_[r * words_ + w]) & bit_of(t)) != 0;
  }

  /// No row transmits at \p t: the analysed stream may use the slot.
  bool free_at_bottom(Time t) const {
    return (busy_[word_of(t)] & bit_of(t)) == 0;
  }

  /// Number of windows (message instances) of row \p r within the horizon.
  std::size_t num_windows(std::size_t r) const;

  /// True when window \p w of row \p r has been suppressed.
  bool window_suppressed(std::size_t r, std::size_t w) const {
    return suppressed_.at(r).at(w) != 0;
  }

  /// Modify_Diagram step for one indirect row: a window (message
  /// instance) of row \p r is suppressed when no intermediate row is
  /// active during any slot of the instance's footprint (its ALLOCATED
  /// and WAITING slots).  Rows at and below \p r are then re-allocated.
  /// Returns the number of newly suppressed instances.
  /// Not supported in carry-over mode (instance footprints blur across
  /// windows); asserts.
  int relax_indirect_row(std::size_t r,
                         const std::vector<std::size_t>& intermediate_rows);

  /// Scans the bottom row: returns the 1-indexed time at which the count
  /// of free slots reaches \p required, or kNoTime when the horizon ends
  /// first.  (The paper's Cal_U lines 9-12.)  Exits early once the slots
  /// remaining before the horizon cannot reach \p required.
  Time accumulate_free(Time required) const;

  /// Number of ALLOCATED slots of row \p r in [0, min(end, horizon)).
  /// Rows allocate only slots left free by the rows above, so these
  /// counts are disjoint across rows and the provenance identity
  ///   bound = latency + sum_r allocated_before(r, bound)
  /// holds exactly (see explain.hpp).
  Time allocated_before(std::size_t r, Time end) const;

  /// ASCII rendering in the style of the paper's Figs. 4/6/7/9:
  /// '#' allocated, '.' waiting, ' ' free-or-busy, bottom row 'F' free.
  std::string render() const;

 private:
  static constexpr std::size_t kBits = 64;

  std::vector<RowSpec> rows_;
  Time horizon_;
  bool carry_over_;
  std::size_t words_ = 0;             // ceil(horizon / 64)
  std::vector<std::uint64_t> busy_;   // per word: some row allocated
  std::vector<std::uint64_t> alloc_;  // row-major [row][word]
  std::vector<std::uint64_t> wait_;   // row-major [row][word]
  std::vector<std::vector<std::uint8_t>> suppressed_;  // per row, per window

  static std::size_t word_of(Time t) {
    return static_cast<std::size_t>(t) / kBits;
  }
  static std::uint64_t bit_of(Time t) {
    return std::uint64_t{1} << (static_cast<std::size_t>(t) % kBits);
  }

  std::uint64_t* row_alloc(std::size_t r) { return alloc_.data() + r * words_; }
  std::uint64_t* row_wait(std::size_t r) { return wait_.data() + r * words_; }
  const std::uint64_t* row_alloc(std::size_t r) const {
    return alloc_.data() + r * words_;
  }
  const std::uint64_t* row_wait(std::size_t r) const {
    return wait_.data() + r * words_;
  }

  /// Greedily hands the first free slots of [start, end) to the row:
  /// up to \p demand slots become ALLOCATED (and busy), busy slots
  /// scanned before the demand is met become WAITING.  Returns the number
  /// of slots allocated.
  Time allocate_range(std::uint64_t* alloc, std::uint64_t* wait, Time start,
                      Time end, Time demand);

  /// Re-allocates rows [from, end), assuming rows above are up to date.
  void rebuild_from(std::size_t from);
  void allocate_row(std::size_t r);
};

}  // namespace wormrt::core
