#pragma once

#include <vector>

#include "core/hpset.hpp"

/// \file bdg.hpp
/// The blocking dependency graph (BDG) of one analysed stream: nodes are
/// the HP-set members plus the stream itself; a directed edge u -> v
/// means "u can directly block v".  Cal_U walks this graph breadth-first
/// from the analysed stream over the transposed edges (the paper's
/// Modify_Diagram) to order the relaxation of indirect elements: nearest
/// blockers first, farther chain members later.

namespace wormrt::core {

class Bdg {
 public:
  /// Builds the BDG for stream \p j with HP set \p hp.  Node indices:
  /// 0..hp.size()-1 correspond to hp elements (in hp order), and
  /// hp.size() is the analysed stream j itself.  Any DirectBlocking
  /// oracle works — the eager BlockingAnalysis or the incremental engine.
  Bdg(const DirectBlocking& blocking, StreamId j, const HpSet& hp);

  std::size_t num_nodes() const { return ids_.size(); }

  /// Stream id of BDG node \p u.
  StreamId stream_of(std::size_t u) const { return ids_.at(u); }

  /// True when node \p u directly blocks node \p v.
  bool edge(std::size_t u, std::size_t v) const;

  /// BFS distance of each node from the analysed stream over transposed
  /// edges (the stream itself has level 0, its direct blockers level 1,
  /// their blockers level 2, ...).  Every HP member is reachable, so all
  /// levels are finite.
  const std::vector<int>& levels() const { return levels_; }

 private:
  std::vector<StreamId> ids_;
  std::vector<std::uint8_t> adj_;  // row-major num_nodes x num_nodes
  std::vector<int> levels_;
};

}  // namespace wormrt::core
