#pragma once

#include "util/types.hpp"

/// \file latency.hpp
/// Network latency: the paper defines it as the time taken to deliver a
/// message when no other traffic is present.  In a wormhole network the
/// header advances one hop per flit time and the remaining C-1 flits
/// pipeline behind it, so with unit per-hop delay
///     L = hops * router_delay + (C - 1) * flit_cycle.
/// The default (router_delay = flit_cycle = 1) reproduces every L value
/// of the paper's Section 4.4 example, e.g. M_0 with 4 hops and C = 4
/// gives L = 7.

namespace wormrt::core {

struct LatencyModel {
  /// Cycles for the header to cross one router + physical channel.
  Time router_delay = 1;
  /// Cycles between consecutive flits on a channel.
  Time flit_cycle = 1;

  /// Contention-free latency of a \p length-flit message over \p hops.
  /// Requires hops >= 1 and length >= 1.
  Time network_latency(int hops, Time length) const;
};

/// The model used throughout the paper (unit delays).
inline constexpr LatencyModel kPaperLatencyModel{};

}  // namespace wormrt::core
