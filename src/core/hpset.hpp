#pragma once

#include <vector>

#include "core/message_stream.hpp"

/// \file hpset.hpp
/// Generate_HP: for every message stream, the set of streams that can
/// delay it — directly (paths share a directed physical channel and the
/// blocker's priority is not lower) or indirectly (through a chain of
/// direct-blocking relations).  This is the first step of the paper's
/// delay-bound algorithm (Section 4.1).

namespace wormrt::core {

enum class BlockMode : std::uint8_t {
  kDirect,    ///< paths of the two streams overlap
  kIndirect,  ///< no overlap, but a blocking chain exists
};

/// One element of an HP set: the structure with M_id / Mode / IN fields
/// of the paper's Section 4.2.
struct HpElement {
  StreamId id = kNoStream;  ///< the delaying stream (M_id field)
  BlockMode mode = BlockMode::kDirect;
  /// IN field: for indirect elements, the intermediate streams adjacent
  /// to this element on its blocking chains toward the analysed stream
  /// (sorted ascending).  Empty for direct elements.
  std::vector<StreamId> intermediates;
};

/// The HP set of one stream, sorted by ascending stream id.  The analysed
/// stream itself is never a member (the paper includes it and strips it
/// on the first line of Cal_U; we strip it at construction).
using HpSet = std::vector<HpElement>;

/// Resource-sharing rules for the direct-blocking relation.
struct BlockingOptions {
  /// Equal-priority messages cannot preempt each other, so they delay
  /// each other; with a single priority level this makes every
  /// overlapping pair mutually blocking (cf. Tables 1-2).
  bool same_priority_blocks = true;
  /// Streams with the same destination contend for the node's single
  /// ejection (delivery) port; treat it as a shared resource.  The paper
  /// does not model it, but a one-port router makes the interference
  /// real (see EXPERIMENTS.md).
  bool ejection_port_overlap = true;
  /// Likewise for the injection port when several streams share a
  /// source node (never happens in the paper's workloads, which give
  /// each node at most one stream).
  bool injection_port_overlap = true;
};

/// Read-only view of the pairwise direct-blocking relation over a dense
/// stream population 0..size()-1.  `BlockingAnalysis` realises it by
/// precomputing the whole matrix at construction; the incremental
/// admission engine maintains one across add/remove mutations.  The BDG
/// and the delay-bound calculator only ever consult this interface.
class DirectBlocking {
 public:
  virtual ~DirectBlocking() = default;

  virtual std::size_t size() const = 0;

  /// True when stream \p a can directly delay stream \p b.
  virtual bool direct_blocks(StreamId a, StreamId b) const = 0;
};

/// Precomputes the pairwise direct-blocking relation of a stream set and
/// derives HP sets from it.
///
/// Direct blocking: `a` directly blocks `b` iff a != b, the streams
/// share a resource (a directed channel of their paths, or a node port
/// per BlockingOptions), and P_a > P_b — or P_a == P_b under
/// same_priority_blocks.
///
/// HP_j is the set of streams from which `j` is reachable in the
/// direct-blocking digraph; an element with no direct edge to `j` is
/// INDIRECT and its intermediates are its direct successors that also
/// reach `j` (the heads of its blocking chains).
class BlockingAnalysis : public DirectBlocking {
 public:
  explicit BlockingAnalysis(const StreamSet& streams,
                            BlockingOptions options = {});

  /// Convenience overload toggling only same-priority blocking.
  BlockingAnalysis(const StreamSet& streams, bool same_priority_blocks)
      : BlockingAnalysis(streams,
                         BlockingOptions{same_priority_blocks, true, true}) {}

  std::size_t size() const override { return n_; }

  /// True when stream \p a can directly delay stream \p b.
  bool direct_blocks(StreamId a, StreamId b) const override;

  /// The HP set of stream \p j (computed eagerly at construction).
  const HpSet& hp_set(StreamId j) const {
    return hp_sets_.at(static_cast<std::size_t>(j));
  }

  /// All blocking chains from \p from to \p to: each chain is the list of
  /// intervening streams, excluding both endpoints (the paper's "blocking
  /// chain" definition; Fig. 3 has two chains (M_B) and (M_C) between
  /// M_D and M_A).  Simple paths only; intended for reporting/tests.
  std::vector<std::vector<StreamId>> blocking_chains(StreamId from,
                                                     StreamId to) const;

 private:
  std::size_t n_ = 0;
  std::vector<std::uint8_t> blocks_;  // n*n adjacency, row-major [a][b]
  std::vector<HpSet> hp_sets_;

  void build_hp_sets();
  void chains_dfs(StreamId at, StreamId to, std::vector<StreamId>& stack,
                  std::vector<std::uint8_t>& on_stack,
                  std::vector<std::vector<StreamId>>& out) const;
};

}  // namespace wormrt::core
