#include "core/admission.hpp"

#include <cassert>

#include "core/delay_bound.hpp"
#include "util/thread_pool.hpp"

namespace wormrt::core {

AdmissionController::AdmissionController(const topo::Topology& topo,
                                         const route::RoutingAlgorithm& routing,
                                         AnalysisConfig config)
    : topo_(topo), routing_(routing), config_(config) {}

StreamSet AdmissionController::build_set(const MessageStream* extra) const {
  StreamSet set;
  for (const auto& e : entries_) {
    MessageStream s = e.stream;
    s.id = static_cast<StreamId>(set.size());
    set.add(std::move(s));
  }
  if (extra != nullptr) {
    MessageStream s = *extra;
    s.id = static_cast<StreamId>(set.size());
    set.add(std::move(s));
  }
  return set;
}

std::vector<Time> AdmissionController::bounds_for(const StreamSet& set) const {
  const BlockingAnalysis blocking(
      set, BlockingOptions{config_.same_priority_blocks,
                           config_.ejection_port_overlap,
                           config_.injection_port_overlap});
  const DelayBoundCalculator calc(set, blocking, config_);
  std::vector<Time> bounds(set.size());
  // Every admission decision re-evaluates the whole population; the
  // per-stream bounds are independent, so fan them out (each into its own
  // slot — identical to the serial loop for any num_threads).
  util::parallel_for(set.size(), config_.num_threads, [&](std::size_t j) {
    bounds[j] = calc.calc(static_cast<StreamId>(j)).bound;
  });
  return bounds;
}

AdmissionController::Decision AdmissionController::request(
    topo::NodeId src, topo::NodeId dst, Priority priority, Time period,
    Time length, Time deadline) {
  Decision decision;
  MessageStream candidate =
      make_stream(topo_, routing_, /*id=*/0, src, dst, priority, period,
                  length, deadline);
  if (candidate.latency > candidate.deadline) {
    return decision;  // trivially impossible, nothing else to blame
  }

  const StreamSet trial = build_set(&candidate);
  const std::vector<Time> bounds = bounds_for(trial);
  const std::size_t cand_index = trial.size() - 1;
  decision.bound = bounds[cand_index];

  bool ok = decision.bound != kNoTime && decision.bound <= deadline;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const Time b = bounds[i];
    if (b == kNoTime || b > trial[static_cast<StreamId>(i)].deadline) {
      decision.would_break.push_back(entries_[i].handle);
      ok = false;
    }
  }
  if (!ok) {
    return decision;
  }

  decision.admitted = true;
  decision.handle = next_handle_++;
  entries_.push_back(Entry{decision.handle, std::move(candidate)});
  return decision;
}

bool AdmissionController::remove(Handle handle) {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].handle == handle) {
      entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(i));
      return true;
    }
  }
  return false;
}

std::optional<Time> AdmissionController::bound_of(Handle handle) const {
  const StreamSet set = build_set(nullptr);
  const std::vector<Time> bounds = bounds_for(set);
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].handle == handle) {
      return bounds[i];
    }
  }
  return std::nullopt;
}

StreamSet AdmissionController::snapshot() const { return build_set(nullptr); }

}  // namespace wormrt::core
