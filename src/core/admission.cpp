#include "core/admission.hpp"

#include <cassert>

#include "obs/trace.hpp"

namespace wormrt::core {

AdmissionController::AdmissionController(const topo::Topology& topo,
                                         const route::RoutingAlgorithm& routing,
                                         AnalysisConfig config, Mode mode)
    : topo_(topo), routing_(routing), engine_(topo, config) {
  engine_.set_force_full(mode == Mode::kFullRecompute);
}

AdmissionController::Decision AdmissionController::request(
    topo::NodeId src, topo::NodeId dst, Priority priority, Time period,
    Time length, Time deadline) {
  return request(src, dst, priority, period, length, deadline, nullptr);
}

AdmissionController::Decision AdmissionController::request(
    topo::NodeId src, topo::NodeId dst, Priority priority, Time period,
    Time length, Time deadline, BoundProvenance* provenance) {
  OBS_SPAN("admission_request");
  Decision decision;
  MessageStream candidate =
      make_stream(topo_, routing_, /*id=*/0, src, dst, priority, period,
                  length, deadline);
  if (candidate.latency > candidate.deadline) {
    if (provenance != nullptr) {
      // No trial happens; report the short-circuit itself.
      *provenance = BoundProvenance{};
      provenance->deadline = candidate.deadline;
      provenance->base_latency = candidate.latency;
      provenance->deadline_pruned = true;
    }
    return decision;  // trivially impossible, nothing else to blame
  }

  // Trial add: the engine recomputes the newcomer's bound plus exactly
  // the established streams the newcomer can delay (its dirty closure).
  // Everyone else provably keeps both its bound and its guarantee.
  const IncrementalAnalyzer::Mutation trial =
      engine_.add_stream(std::move(candidate));
  decision.bound = *engine_.bound(trial.handle);
  if (provenance != nullptr) {
    // Captured while the trial population is still in place: the terms
    // blame the HP streams of the (possibly rejected) trial set.
    *provenance = *engine_.explain(trial.handle);
  }

  bool ok = decision.bound != kNoTime && decision.bound <= deadline;
  for (const Handle h : trial.dirty) {
    const Time b = *engine_.bound(h);
    if (b == kNoTime || b > engine_.find(h)->deadline) {
      decision.would_break.push_back(h);
      ok = false;
    }
  }
  if (!ok) {
    // Roll the trial back; the reverse mutation recomputes the same dirty
    // closure, restoring every cached bound to its pre-trial value.  The
    // trial handle is released too: a rejected request must leave no
    // trace, so the handle sequence is a pure function of the admitted
    // mutations — the property journal recovery relies on.
    engine_.remove_stream(trial.handle);
    engine_.set_next_handle(trial.handle);
    return decision;
  }

  decision.admitted = true;
  decision.handle = trial.handle;
  return decision;
}

bool AdmissionController::remove(Handle handle) {
  return engine_.remove_stream(handle).has_value();
}

void AdmissionController::restore(topo::NodeId src, topo::NodeId dst,
                                  Priority priority, Time period, Time length,
                                  Time deadline, Handle handle) {
  engine_.add_stream(make_stream(topo_, routing_, /*id=*/0, src, dst, priority,
                                 period, length, deadline),
                     handle);
}

void AdmissionController::unadmit(Handle handle) {
  assert(handle == engine_.next_handle() - 1 &&
         "unadmit only reverses the most recent admission");
  engine_.remove_stream(handle);
  engine_.set_next_handle(handle);
}

std::optional<Time> AdmissionController::bound_of(Handle handle) const {
  return engine_.bound(handle);
}

}  // namespace wormrt::core
