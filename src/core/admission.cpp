#include "core/admission.hpp"

#include <algorithm>
#include <cassert>

#include "obs/trace.hpp"

namespace wormrt::core {

namespace {

/// PR-7 flit-validity domain: the bound survives real credit flow
/// control only when the stream keeps two flit times of slack for the
/// credit round trip (EXPERIMENTS.md finding 2).
bool has_credit_slack(Time bound, Time period) {
  return bound != kNoTime && bound + 2 <= period;
}

}  // namespace

AdmissionController::AdmissionController(topo::Topology& topo,
                                         const route::RoutingAlgorithm& routing,
                                         AnalysisConfig config, Mode mode)
    : topo_(topo), routing_(routing), engine_(topo, config) {
  engine_.set_force_full(mode == Mode::kFullRecompute);
}

bool AdmissionController::gate_ok(Time bound, Time deadline, Time period,
                                  const std::vector<Handle>& dirty,
                                  std::vector<Handle>* would_break) const {
  const bool guard = engine_.config().credit_slack_guard;
  bool ok = bound != kNoTime && bound <= deadline;
  if (guard && !has_credit_slack(bound, period)) {
    ok = false;
  }
  for (const Handle h : dirty) {
    const Time b = *engine_.bound(h);
    const MessageStream* s = engine_.find(h);
    if (b == kNoTime || b > s->deadline ||
        (guard && !has_credit_slack(b, s->period))) {
      if (would_break != nullptr) {
        would_break->push_back(h);
      }
      ok = false;
    }
  }
  return ok;
}

AdmissionController::Decision AdmissionController::request(
    topo::NodeId src, topo::NodeId dst, Priority priority, Time period,
    Time length, Time deadline) {
  return request(src, dst, priority, period, length, deadline, nullptr);
}

AdmissionController::Decision AdmissionController::request(
    topo::NodeId src, topo::NodeId dst, Priority priority, Time period,
    Time length, Time deadline, BoundProvenance* provenance) {
  OBS_SPAN("admission_request");
  Decision decision;
  route::FaultAwarePath choice;
  if (!route::route_avoiding_faults(topo_, src, dst, &choice)) {
    decision.no_route = true;
    if (provenance != nullptr) {
      *provenance = BoundProvenance{};
      provenance->deadline = deadline;
      provenance->deadline_pruned = true;
    }
    return decision;  // every route order crosses a faulted link
  }
  decision.route_order = choice.route_order;
  MessageStream candidate =
      make_stream_with_order(topo_, /*id=*/0, src, dst, priority, period,
                             length, deadline, choice.route_order);
  if (candidate.latency > candidate.deadline) {
    if (provenance != nullptr) {
      // No trial happens; report the short-circuit itself.
      *provenance = BoundProvenance{};
      provenance->deadline = candidate.deadline;
      provenance->base_latency = candidate.latency;
      provenance->deadline_pruned = true;
    }
    return decision;  // trivially impossible, nothing else to blame
  }

  // Trial add: the engine recomputes the newcomer's bound plus exactly
  // the established streams the newcomer can delay (its dirty closure).
  // Everyone else provably keeps both its bound and its guarantee.
  const IncrementalAnalyzer::Mutation trial =
      engine_.add_stream(std::move(candidate));
  decision.bound = *engine_.bound(trial.handle);
  decision.flit_valid = has_credit_slack(decision.bound, period);
  if (provenance != nullptr) {
    // Captured while the trial population is still in place: the terms
    // blame the HP streams of the (possibly rejected) trial set.
    *provenance = *engine_.explain(trial.handle);
  }

  const bool ok = gate_ok(decision.bound, deadline, period, trial.dirty,
                          &decision.would_break);
  if (!ok) {
    // Roll the trial back; the reverse mutation recomputes the same dirty
    // closure, restoring every cached bound to its pre-trial value.  The
    // trial handle is released too: a rejected request must leave no
    // trace, so the handle sequence is a pure function of the admitted
    // mutations — the property journal recovery relies on.
    engine_.remove_stream(trial.handle);
    engine_.set_next_handle(trial.handle);
    return decision;
  }

  decision.admitted = true;
  decision.handle = trial.handle;
  return decision;
}

bool AdmissionController::remove(Handle handle) {
  return engine_.remove_stream(handle).has_value();
}

AdmissionController::LinkMutation AdmissionController::link_down(
    topo::ChannelId channel) {
  OBS_SPAN("admission_link_down");
  LinkMutation m;
  m.channel = channel;
  if (topo_.channel_faulted(channel)) {
    return m;  // already down; nothing to do, nothing to replay
  }
  m.changed = true;
  topo_.set_channel_faulted(channel, true);

  // Channel-level dirtiness: the victims come straight off the engine's
  // overlap index, ascending handles so replay processes them in the
  // same order.
  const std::vector<Handle> victims = engine_.handles_on_channel(channel);
  std::vector<MessageStream> params;
  params.reserve(victims.size());
  engine_.begin_batch();
  for (const Handle h : victims) {
    params.push_back(*engine_.find(h));
    engine_.remove_stream(h);
  }
  // One recompute for the union of the victims' dirty closures.
  m.recomputed = engine_.end_batch();

  // Re-admit each victim on the first fault-free route order that passes
  // the full admission gate, keeping its original handle.  A forced
  // handle below next_handle() never perturbs the handle sequence, so a
  // failed trial rolls back with a plain remove.
  for (std::size_t i = 0; i < victims.size(); ++i) {
    const Handle h = victims[i];
    const MessageStream& old = params[i];
    route::FaultAwarePath choice;
    if (!route::route_avoiding_faults(topo_, old.src, old.dst, &choice)) {
      m.evicted.push_back(h);
      continue;
    }
    MessageStream candidate = make_stream_with_order(
        topo_, /*id=*/0, old.src, old.dst, old.priority, old.period,
        old.length, old.deadline, choice.route_order);
    if (candidate.latency > candidate.deadline) {
      m.evicted.push_back(h);
      continue;
    }
    const IncrementalAnalyzer::Mutation trial =
        engine_.add_stream(std::move(candidate), h);
    const Time bound = *engine_.bound(h);
    if (!gate_ok(bound, old.deadline, old.period, trial.dirty, nullptr)) {
      engine_.remove_stream(h);
      m.evicted.push_back(h);
      continue;
    }
    m.rerouted.push_back(h);
    m.recomputed.insert(m.recomputed.end(), trial.dirty.begin(),
                        trial.dirty.end());
  }

  // Tidy the recompute report: ascending, deduplicated, survivors only.
  std::sort(m.recomputed.begin(), m.recomputed.end());
  m.recomputed.erase(std::unique(m.recomputed.begin(), m.recomputed.end()),
                     m.recomputed.end());
  m.recomputed.erase(
      std::remove_if(m.recomputed.begin(), m.recomputed.end(),
                     [this](Handle h) { return engine_.find(h) == nullptr; }),
      m.recomputed.end());
  return m;
}

AdmissionController::LinkMutation AdmissionController::link_up(
    topo::ChannelId channel) {
  OBS_SPAN("admission_link_up");
  LinkMutation m;
  m.channel = channel;
  if (!topo_.channel_faulted(channel)) {
    return m;  // already up
  }
  m.changed = true;
  topo_.set_channel_faulted(channel, false);
  // Established streams keep their detour paths: their bounds are still
  // valid (the healthy channel only *adds* routing options), and silently
  // migrating them would change interference under their guarantees.
  return m;
}

void AdmissionController::restore(topo::NodeId src, topo::NodeId dst,
                                  Priority priority, Time period, Time length,
                                  Time deadline, Handle handle,
                                  int route_order) {
  engine_.add_stream(make_stream_with_order(topo_, /*id=*/0, src, dst,
                                            priority, period, length, deadline,
                                            route_order),
                     handle);
}

void AdmissionController::unadmit(Handle handle) {
  assert(handle == engine_.next_handle() - 1 &&
         "unadmit only reverses the most recent admission");
  engine_.remove_stream(handle);
  engine_.set_next_handle(handle);
}

std::optional<Time> AdmissionController::bound_of(Handle handle) const {
  return engine_.bound(handle);
}

}  // namespace wormrt::core
