#pragma once

#include "core/message_stream.hpp"
#include "util/rng.hpp"

/// \file task_mapping.hpp
/// Job allocation — the problem the paper explicitly defers ("the jobs
/// which communicate each other frequently could be mapped to
/// relatively nearby processing nodes.  But job allocation is another
/// problem", Section 2).  Given the logical task graph of a real-time
/// job, this module places tasks onto network nodes so the resulting
/// message streams contend as little as possible, before the
/// feasibility test runs.
///
/// The mapper is a communication-weighted greedy placement followed by
/// first-improvement pairwise-swap hill climbing on a contention cost:
/// the sum of squared per-resource utilizations (channels plus node
/// ports), which penalises hot spots — precisely what makes delay
/// bounds loose.

namespace wormrt::core {

/// One periodic flow of the logical task graph.
struct TaskFlow {
  int src_task = 0;
  int dst_task = 0;
  Priority priority = 0;
  Time period = 0;    ///< T
  Time length = 0;    ///< C, flits
  Time deadline = 0;  ///< D
};

struct TaskGraph {
  int num_tasks = 0;
  std::vector<TaskFlow> flows;

  /// "" when consistent (task ids in range, parameters positive, no
  /// self-flows).
  std::string validate() const;
};

struct MappingResult {
  /// node_of_task[t] = network node hosting task t (all distinct).
  std::vector<topo::NodeId> node_of_task;
  /// The flows realised as message streams on the mapped nodes (ids in
  /// flow order), ready for determine_feasibility / simulation.
  StreamSet streams;
  /// Contention cost of the final placement (see file comment).
  double cost = 0.0;
  /// Hill-climbing swaps accepted.
  int improvements = 0;
};

/// Places \p graph onto \p topo.  Requires num_tasks <= topo.num_nodes().
/// Deterministic for a given seed.
MappingResult map_tasks(const TaskGraph& graph, const topo::Topology& topo,
                        const route::RoutingAlgorithm& routing,
                        std::uint64_t seed = 1, int swap_budget = 4000);

/// Baseline: a uniform random placement (same output shape), for the
/// mapping-quality bench.
MappingResult map_tasks_randomly(const TaskGraph& graph,
                                 const topo::Topology& topo,
                                 const route::RoutingAlgorithm& routing,
                                 std::uint64_t seed = 1);

/// Contention cost of an arbitrary placement (exposed for tests).
double mapping_cost(const TaskGraph& graph, const topo::Topology& topo,
                    const route::RoutingAlgorithm& routing,
                    const std::vector<topo::NodeId>& node_of_task);

/// Realises the flows as message streams on the given placement.
StreamSet streams_for_mapping(const TaskGraph& graph,
                              const topo::Topology& topo,
                              const route::RoutingAlgorithm& routing,
                              const std::vector<topo::NodeId>& node_of_task);

}  // namespace wormrt::core
