#include "core/workload.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "core/delay_bound.hpp"

namespace wormrt::core {

const char* to_string(TrafficPattern pattern) {
  switch (pattern) {
    case TrafficPattern::kUniform: return "uniform";
    case TrafficPattern::kTranspose: return "transpose";
    case TrafficPattern::kBitReversal: return "bit-reversal";
    case TrafficPattern::kHotspot: return "hotspot";
    case TrafficPattern::kNearestNeighbor: return "nearest-neighbor";
  }
  return "?";
}

namespace {

topo::NodeId uniform_other(util::Rng& rng, const topo::Topology& topo,
                           topo::NodeId src) {
  auto dst = static_cast<topo::NodeId>(
      rng.uniform_int(0, topo.num_nodes() - 2));
  if (dst >= src) {
    ++dst;
  }
  return dst;
}

topo::NodeId pick_destination(util::Rng& rng, const topo::Topology& topo,
                              topo::NodeId src, const WorkloadParams& params) {
  switch (params.pattern) {
    case TrafficPattern::kUniform:
      return uniform_other(rng, topo, src);
    case TrafficPattern::kTranspose: {
      topo::Coord c = topo.coord_of(src);
      if (c.size() >= 2) {
        using std::swap;
        swap(c[0], c[1]);
        // Rectangular shapes: clamp into range so the swap stays valid.
        c[0] = std::min(c[0], topo.radix(0) - 1);
        c[1] = std::min(c[1], topo.radix(1) - 1);
      }
      const topo::NodeId dst = topo.node_at(c);
      return dst == src ? uniform_other(rng, topo, src) : dst;
    }
    case TrafficPattern::kBitReversal: {
      int bits = 0;
      while ((1 << (bits + 1)) <= topo.num_nodes()) {
        ++bits;
      }
      std::uint32_t v = static_cast<std::uint32_t>(src);
      std::uint32_t rev = 0;
      for (int b = 0; b < bits; ++b) {
        rev = (rev << 1) | ((v >> b) & 1u);
      }
      const auto dst =
          static_cast<topo::NodeId>(rev % static_cast<std::uint32_t>(
                                              topo.num_nodes()));
      return dst == src ? uniform_other(rng, topo, src) : dst;
    }
    case TrafficPattern::kHotspot: {
      const auto hot = static_cast<topo::NodeId>(topo.num_nodes() / 2);
      if (src != hot && rng.uniform_real() < params.hotspot_fraction) {
        return hot;
      }
      return uniform_other(rng, topo, src);
    }
    case TrafficPattern::kNearestNeighbor: {
      const auto& out = topo.channels().outgoing(src);
      const auto pick = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(out.size()) - 1));
      return topo.channels().channel(out[pick]).dst;
    }
  }
  return uniform_other(rng, topo, src);
}

}  // namespace

StreamSet generate_workload(const topo::Topology& topo,
                            const route::RoutingAlgorithm& routing,
                            const WorkloadParams& params) {
  assert(params.num_streams >= 1);
  assert(params.num_streams <= topo.num_nodes());
  assert(params.priority_levels >= 1);
  assert(params.period_min >= 1 && params.period_min <= params.period_max);
  assert(params.length_min >= 1 && params.length_min <= params.length_max);

  util::Rng rng(params.seed);
  const auto sources =
      rng.sample_without_replacement(topo.num_nodes(), params.num_streams);

  StreamSet set;
  for (int i = 0; i < params.num_streams; ++i) {
    const auto src = static_cast<topo::NodeId>(sources[static_cast<std::size_t>(i)]);
    const topo::NodeId dst = pick_destination(rng, topo, src, params);
    const auto priority =
        static_cast<Priority>(rng.uniform_int(0, params.priority_levels - 1));
    const Time period = rng.uniform_int(params.period_min, params.period_max);
    const Time length = rng.uniform_int(params.length_min, params.length_max);
    MessageStream s = make_stream(topo, routing, static_cast<StreamId>(i),
                                  src, dst, priority, period, length,
                                  /*deadline=*/period);
    // A long message on a long path can have a contention-free latency
    // above its period; the deadline starts at max(T, L) so the set is
    // well-formed (the adjustment pass raises it to U anyway).
    s.deadline = std::max(s.deadline, s.latency);
    set.add(std::move(s));
  }
  assert(set.validate().empty());
  return set;
}

namespace {

/// Smallest period for stream \p j that keeps every resource of its path
/// (directed channels plus the source/destination node ports) within
/// \p target utilization, counting the streams that do not yield to j
/// (priority above, or equal when equal priorities block).
Time stable_period_for(const StreamSet& streams, StreamId j,
                       double target, const AnalysisConfig& config,
                       Time cap) {
  const auto& sj = streams[j];

  const auto senior_util = [&](auto&& shares_resource) {
    double senior = 0.0;
    for (const auto& sk : streams) {
      if (sk.id == j) {
        continue;
      }
      const bool yields_to_k =
          sk.priority > sj.priority ||
          (config.same_priority_blocks && sk.priority == sj.priority);
      if (yields_to_k && shares_resource(sk)) {
        senior += sk.utilization();
      }
    }
    return senior;
  };

  const auto period_for_slack = [&](double senior) -> Time {
    const double slack = target - senior;
    const double min_share =
        static_cast<double>(sj.length) / static_cast<double>(cap);
    if (slack <= min_share) {
      return cap;  // resource already saturated by non-yielding traffic
    }
    return static_cast<Time>(
        std::ceil(static_cast<double>(sj.length) / slack));
  };

  Time needed = sj.period;
  for (const auto cid : sj.path.channels) {
    needed = std::max(
        needed, period_for_slack(senior_util([&](const MessageStream& sk) {
          return std::find(sk.path.channels.begin(), sk.path.channels.end(),
                           cid) != sk.path.channels.end();
        })));
  }
  if (config.ejection_port_overlap) {
    needed = std::max(
        needed, period_for_slack(senior_util([&](const MessageStream& sk) {
          return sk.dst == sj.dst;
        })));
  }
  if (config.injection_port_overlap) {
    needed = std::max(
        needed, period_for_slack(senior_util([&](const MessageStream& sk) {
          return sk.src == sj.src;
        })));
  }
  return std::min(needed, cap);
}

}  // namespace

AdjustResult adjust_periods_to_bounds(StreamSet& streams,
                                      AnalysisConfig config,
                                      int max_iterations,
                                      double stability_utilization) {
  config.horizon = HorizonPolicy::kExtended;
  AdjustResult result;
  result.bounds.assign(streams.size(), kNoTime);

  // Paths and priorities never change here, so one blocking analysis
  // serves every iteration; only periods/deadlines move.
  const BlockingAnalysis blocking(
      streams,
      BlockingOptions{config.same_priority_blocks,
                      config.ejection_port_overlap,
                      config.injection_port_overlap});
  const DelayBoundCalculator calc(streams, blocking, config);

  for (int iter = 0; iter < max_iterations; ++iter) {
    ++result.iterations;
    bool changed = false;
    for (const StreamId j : streams.by_priority_desc()) {
      auto& s = streams.mutable_stream(j);
      if (stability_utilization > 0.0) {
        const Time stable =
            stable_period_for(streams, j, stability_utilization, config,
                              config.horizon_cap);
        if (stable > s.period) {
          s.period = stable;
          s.deadline = std::max(s.deadline, stable);
          changed = true;
        }
      }
      const DelayBoundResult r = calc.calc(j);
      const Time bound = r.bound != kNoTime ? r.bound : config.horizon_cap;
      result.bounds[static_cast<std::size_t>(j)] = bound;
      if (bound > s.period) {
        s.period = bound;
        s.deadline = bound;
        changed = true;
      } else if (bound > s.deadline) {
        s.deadline = bound;
        changed = true;
      }
    }
    if (!changed) {
      result.converged = true;
      break;
    }
  }
  return result;
}

}  // namespace wormrt::core
