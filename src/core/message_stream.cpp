#include "core/message_stream.hpp"

#include <algorithm>
#include <cassert>

#include "core/latency.hpp"
#include "route/fault_aware.hpp"

namespace wormrt::core {

StreamSet::StreamSet(std::vector<MessageStream> streams)
    : streams_(std::move(streams)) {
  for (std::size_t i = 0; i < streams_.size(); ++i) {
    assert(streams_[i].id == static_cast<StreamId>(i));
  }
}

void StreamSet::add(MessageStream stream) {
  assert(stream.id == static_cast<StreamId>(streams_.size()));
  streams_.push_back(std::move(stream));
}

void StreamSet::remove_stream(StreamId id) {
  assert(id >= 0 && static_cast<std::size_t>(id) < streams_.size());
  streams_.erase(streams_.begin() + static_cast<std::ptrdiff_t>(id));
  for (std::size_t i = static_cast<std::size_t>(id); i < streams_.size(); ++i) {
    streams_[i].id = static_cast<StreamId>(i);
  }
}

Priority StreamSet::max_priority() const {
  Priority p = 0;
  for (const auto& s : streams_) {
    p = std::max(p, s.priority);
  }
  return p;
}

Priority StreamSet::min_priority() const {
  if (streams_.empty()) {
    return 0;
  }
  Priority p = streams_.front().priority;
  for (const auto& s : streams_) {
    p = std::min(p, s.priority);
  }
  return p;
}

std::vector<StreamId> StreamSet::by_priority_desc() const {
  std::vector<StreamId> order(streams_.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<StreamId>(i);
  }
  std::stable_sort(order.begin(), order.end(), [this](StreamId a, StreamId b) {
    const auto& sa = streams_[static_cast<std::size_t>(a)];
    const auto& sb = streams_[static_cast<std::size_t>(b)];
    if (sa.priority != sb.priority) {
      return sa.priority > sb.priority;
    }
    return a < b;
  });
  return order;
}

std::string StreamSet::validate() const {
  for (std::size_t i = 0; i < streams_.size(); ++i) {
    const auto& s = streams_[i];
    const std::string tag = "stream " + std::to_string(i) + ": ";
    if (s.id != static_cast<StreamId>(i)) {
      return tag + "id not dense";
    }
    if (s.period <= 0) {
      return tag + "period must be positive";
    }
    if (s.length <= 0) {
      return tag + "length must be positive";
    }
    if (s.deadline <= 0) {
      return tag + "deadline must be positive";
    }
    if (s.latency <= 0) {
      return tag + "latency must be positive";
    }
    if (s.latency > s.deadline) {
      return tag + "network latency exceeds deadline (trivially infeasible)";
    }
    if (s.src == s.dst) {
      return tag + "source equals destination";
    }
    if (s.path.src != s.src || s.path.dst != s.dst || s.path.channels.empty()) {
      return tag + "path does not connect source to destination";
    }
  }
  return "";
}

MessageStream make_stream(const topo::Topology& topo,
                          const route::RoutingAlgorithm& routing, StreamId id,
                          topo::NodeId src, topo::NodeId dst, Priority priority,
                          Time period, Time length, Time deadline) {
  MessageStream s;
  s.id = id;
  s.src = src;
  s.dst = dst;
  s.priority = priority;
  s.period = period;
  s.length = length;
  s.deadline = deadline;
  s.path = routing.route(topo, src, dst);
  s.latency = kPaperLatencyModel.network_latency(s.path.hops(), length);
  return s;
}

MessageStream make_stream_with_order(const topo::Topology& topo, StreamId id,
                                     topo::NodeId src, topo::NodeId dst,
                                     Priority priority, Time period,
                                     Time length, Time deadline,
                                     int route_order) {
  MessageStream s;
  s.id = id;
  s.src = src;
  s.dst = dst;
  s.priority = priority;
  s.period = period;
  s.length = length;
  s.deadline = deadline;
  s.route_order = route_order;
  s.path = route::route_with_order(topo, src, dst, route_order);
  s.latency = kPaperLatencyModel.network_latency(s.path.hops(), length);
  return s;
}

}  // namespace wormrt::core
