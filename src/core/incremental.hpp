#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/analysis_config.hpp"
#include "core/explain.hpp"
#include "core/hpset.hpp"
#include "core/message_stream.hpp"

/// \file incremental.hpp
/// The incremental delay-bound engine behind online admission control.
///
/// The paper's feasibility test is an off-line whole-set computation:
/// every query rebuilds the blocking analysis and re-runs Cal_U for the
/// entire population, so cost grows with system size instead of with the
/// size of the change.  This engine maintains the channel-overlap index
/// and the direct-blocking digraph incrementally across stream add /
/// remove mutations, derives the *dirty set* of each mutation — exactly
/// the streams whose HP sets can change — and recomputes bounds only for
/// those, serving everyone else from a bound cache.
///
/// Dirty-set rule (see DESIGN.md §7): HP_j is the set of streams that
/// reach j in the direct-blocking digraph (edges encode the priority
/// restriction already), so adding or removing stream x can change HP_j
/// only for the j's that x reaches — the forward closure of x over
/// "blocks" edges, equivalently the reverse-reachable closure of x over
/// the transposed (blocked-by) BDG the relaxation walks.  Every other
/// stream keeps an untouched HP set, an untouched footprint of blocking
/// edges among HP ∪ {j}, and therefore an unchanged bound: ids renumber
/// on removal, but renumbering preserves relative order and every
/// tie-break in the analysis is a `<` on ids.
///
/// The engine is exact, not approximate: a property test churns random
/// add/remove sequences and asserts the cached bounds are identical to a
/// from-scratch BlockingAnalysis + Cal_U pass after every mutation.

namespace wormrt::core {

class IncrementalAnalyzer : public DirectBlocking {
 public:
  /// Stable handle for an admitted stream (survives removals of others).
  using Handle = std::int64_t;

  /// The topology is borrowed and must outlive the engine; it sizes the
  /// per-channel / per-port overlap indexes.  Streams arrive pre-routed
  /// (make_stream), so no routing algorithm is needed here.
  explicit IncrementalAnalyzer(const topo::Topology& topo,
                               AnalysisConfig config = {});

  /// Outcome of one mutation: the touched stream's handle plus the
  /// established streams whose bounds were recomputed (the dirty set,
  /// excluding the touched stream itself), in ascending id order.
  struct Mutation {
    Handle handle = -1;
    std::vector<Handle> dirty;
  };

  /// Registers \p stream (its id is rewritten to the dense position),
  /// updates the overlap index and blocking digraph, and recomputes the
  /// bounds of the dirty closure.  Returns the new handle + dirty set.
  /// A non-negative \p forced_handle registers under that exact handle
  /// instead of drawing the next one — the journal-replay path, which
  /// must reproduce pre-crash handle numbering bit for bit.  The forced
  /// handle must not collide with a live one; next_handle() advances
  /// past it.
  Mutation add_stream(MessageStream stream, Handle forced_handle = -1);

  /// Tears a stream down, releasing its interference and recomputing the
  /// bounds of the streams it blocked.  nullopt for an unknown handle.
  std::optional<Mutation> remove_stream(Handle handle);

  /// Channel-level dirtiness: the live streams whose paths traverse the
  /// directed channel, in ascending handle order.  This is the root set
  /// of a topology mutation — when a link goes down, exactly these
  /// streams lose their path, and the union of their removal closures is
  /// everything the fault can touch.  Served from the maintained
  /// channel-overlap index; O(streams on channel), no scan.
  std::vector<Handle> handles_on_channel(topo::ChannelId channel) const;

  /// Batch mode, for multi-mutation events like a link fault that evicts
  /// several streams at once.  Between begin_batch() and end_batch(),
  /// add_stream/remove_stream maintain the digraph and indexes exactly
  /// as usual and record each mutation's dirty closure (as handles, at
  /// mutation time), but defer the bound recompute; end_batch() resolves
  /// the accumulated closure against the surviving population and
  /// recomputes once.  Exact for the same reason the per-mutation rule
  /// is: a stream's HP set changed across the batch only if some
  /// mutation reached it at that mutation's time, and the single final
  /// recompute runs against the settled digraph.  Cached bounds of
  /// dirty streams are stale inside a batch — don't read them until
  /// end_batch() returns.
  void begin_batch();
  /// Ends the batch and recomputes; returns the recomputed streams'
  /// handles, ascending (mutated-then-removed streams excluded).
  std::vector<Handle> end_batch();
  bool in_batch() const { return batching_; }

  /// Number of registered streams.
  std::size_t size() const override { return streams_.size(); }

  bool direct_blocks(StreamId a, StreamId b) const override;

  /// Cached bound of a stream — O(1), no re-analysis (kNoTime when the
  /// free slots never accumulated to the latency within the deadline).
  /// Counted in Stats::bound_cache_hits.
  std::optional<Time> bound(Handle handle) const;

  /// Provenance of a cached bound: re-runs Cal_U for just this stream
  /// and decomposes the result (see explain.hpp).  The decomposition's
  /// `bound` always equals the cached one — same deterministic
  /// computation over the same population.  nullopt for unknown handles.
  std::optional<BoundProvenance> explain(Handle handle) const;

  /// The registered stream behind \p handle, or nullptr.
  const MessageStream* find(Handle handle) const;

  /// Dense id of \p handle (kNoStream when unknown).  Ids shift on
  /// removal; handles never do.
  StreamId id_of(Handle handle) const;
  Handle handle_of(StreamId id) const;

  /// The handle the next add_stream() will assign.  Part of the durable
  /// controller state: recovery restores it exactly so a recovered
  /// daemon hands out the same handles the crashed one would have.
  Handle next_handle() const { return next_handle_; }
  void set_next_handle(Handle handle) { next_handle_ = handle; }

  /// Cached bound by dense id (no recompute).
  Time bound_at(StreamId id) const { return bounds_.at(static_cast<std::size_t>(id)); }

  /// The current population (dense ids, engine order).
  const StreamSet& streams() const { return streams_; }
  StreamSet snapshot() const { return streams_; }

  /// HP set of dense stream \p j derived from the maintained digraph —
  /// element-for-element identical to BlockingAnalysis::hp_set on the
  /// same population.
  HpSet hp_set(StreamId j) const;

  /// From-scratch bounds of the current population (BlockingAnalysis +
  /// Cal_U for every stream): the reference the exactness tests and the
  /// full-vs-incremental benches compare against.
  std::vector<Time> full_recompute_bounds() const;

  /// When set, every mutation marks the whole population dirty — the
  /// "full recompute per decision" behaviour of the pre-incremental
  /// AdmissionController, kept for benchmarking and as the property-test
  /// oracle.
  void set_force_full(bool force) { force_full_ = force; }
  bool force_full() const { return force_full_; }

  /// Cumulative work counters, for regression tests ("two consecutive
  /// bound_of calls do no re-analysis") and the service STATS verb.
  struct Stats {
    std::uint64_t adds = 0;
    std::uint64_t removes = 0;
    /// Cal_U evaluations performed (== total dirty-set sizes + adds).
    std::uint64_t bound_recomputes = 0;
    /// Established streams marked dirty across all mutations.
    std::uint64_t dirty_marked = 0;
    /// Direct-blocking edges inserted or erased.
    std::uint64_t edge_updates = 0;
    /// bound() lookups served from the cache with no re-analysis.
    std::uint64_t bound_cache_hits = 0;
  };
  const Stats& stats() const { return stats_; }

  const AnalysisConfig& config() const { return config_; }

 private:
  const topo::Topology& topo_;
  AnalysisConfig config_;
  bool force_full_ = false;
  bool batching_ = false;
  std::vector<Handle> batch_dirty_;  // dirty handles accumulated in a batch
  Handle next_handle_ = 0;
  /// mutable: bound() is logically const but counts its cache hits.
  mutable Stats stats_;

  StreamSet streams_;                    // dense ids = positions
  std::vector<Handle> handles_;          // id -> handle
  std::vector<Time> bounds_;             // id -> cached bound
  std::vector<std::vector<std::uint8_t>> adj_;  // adj_[a][b]: a blocks b
  std::unordered_map<Handle, StreamId> index_;  // handle -> id

  /// Channel-overlap index: streams using each directed channel / port.
  std::vector<std::vector<StreamId>> by_channel_;
  std::vector<std::vector<StreamId>> by_src_;
  std::vector<std::vector<StreamId>> by_dst_;

  /// Streams overlapping \p s on some shared resource (dedup'd).
  std::vector<StreamId> overlap_candidates(const MessageStream& s) const;
  /// Forward closure of \p x over blocks edges, excluding x itself,
  /// ascending.  The streams whose HP sets the mutation can change.
  std::vector<StreamId> dirty_closure(StreamId x) const;
  /// Recomputes and caches bounds for \p ids (parallel across streams).
  void recompute(const std::vector<StreamId>& ids);
  void unindex(StreamId id);
  static void drop_and_shift(std::vector<StreamId>& list, StreamId id);
};

}  // namespace wormrt::core
