#pragma once

#include <string>

#include "core/message_stream.hpp"

/// \file stream_io.hpp
/// CSV serialization of stream sets, so workloads can be saved,
/// versioned, and replayed across tools.  Only the seven-tuple inputs
/// are stored; paths and latencies are re-derived from the topology and
/// routing on load, which keeps files portable across code changes.
///
/// Format (header required):
///   id,src,dst,priority,period,length,deadline
///   0,37,77,5,15,4,15
///   ...

namespace wormrt::core {

/// Serialises the defining tuple of every stream.
std::string streams_to_csv(const StreamSet& streams);

struct StreamParseResult {
  StreamSet streams;
  /// Empty on success; otherwise "line N: what went wrong".
  std::string error;
  bool ok() const { return error.empty(); }
};

/// Parses CSV produced by streams_to_csv (or by hand).  Ids must be
/// dense and in order; node ids must be valid in \p topo; paths and
/// latencies are recomputed via \p routing.
StreamParseResult streams_from_csv(const std::string& csv,
                                   const topo::Topology& topo,
                                   const route::RoutingAlgorithm& routing);

/// File helpers; save returns false on I/O failure, load reports I/O
/// failure through StreamParseResult::error.
bool save_streams(const std::string& path, const StreamSet& streams);
StreamParseResult load_streams(const std::string& path,
                               const topo::Topology& topo,
                               const route::RoutingAlgorithm& routing);

}  // namespace wormrt::core
