#include "core/delay_bound.hpp"

#include <algorithm>
#include <cassert>

#include "obs/trace.hpp"

namespace wormrt::core {

DelayBoundCalculator::DelayBoundCalculator(const StreamSet& streams,
                                           const BlockingAnalysis& blocking,
                                           AnalysisConfig config)
    : streams_(streams), blocking_(blocking), full_(&blocking), config_(config) {}

DelayBoundCalculator::DelayBoundCalculator(const StreamSet& streams,
                                           const DirectBlocking& blocking,
                                           AnalysisConfig config)
    : streams_(streams), blocking_(blocking), config_(config) {}

std::vector<RowSpec> DelayBoundCalculator::make_rows(const HpSet& hp) const {
  std::vector<RowSpec> rows;
  rows.reserve(hp.size());
  for (const auto& e : hp) {
    const auto& s = streams_[e.id];
    rows.push_back(RowSpec{s.id, s.priority, s.period, s.length});
  }
  // Non-increasing priority, ties by ascending stream id — the paper's
  // "Sort HP_j in non-increasing order of priority".
  std::sort(rows.begin(), rows.end(), [](const RowSpec& a, const RowSpec& b) {
    if (a.priority != b.priority) {
      return a.priority > b.priority;
    }
    return a.stream < b.stream;
  });
  return rows;
}

int DelayBoundCalculator::relax(StreamId j, const HpSet& hp,
                                TimingDiagram& diagram) const {
  OBS_SPAN("modify_diagram");
  // One stream-id -> diagram-row map serves every lookup below (row_of_hp
  // and the intermediate rows), instead of a linear scan per query.
  std::vector<std::size_t> row_of_stream(streams_.size(), diagram.num_rows());
  for (std::size_t r = 0; r < diagram.num_rows(); ++r) {
    row_of_stream[static_cast<std::size_t>(diagram.row_spec(r).stream)] = r;
  }

  // Processing order: BFS distance from the analysed stream over the
  // transposed BDG (nearest chain members first), ties by priority then
  // id — matching the paper's Modify_Diagram traversal, which marks an
  // element only once it has been reached through all of its chains.
  const Bdg bdg(blocking_, j, hp);
  std::vector<std::size_t> order;  // indices into hp
  for (std::size_t i = 0; i < hp.size(); ++i) {
    if (hp[i].mode == BlockMode::kIndirect) {
      order.push_back(i);
    }
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (bdg.levels()[a] != bdg.levels()[b]) {
      return bdg.levels()[a] < bdg.levels()[b];
    }
    const auto& sa = streams_[hp[a].id];
    const auto& sb = streams_[hp[b].id];
    if (sa.priority != sb.priority) {
      return sa.priority > sb.priority;
    }
    return hp[a].id < hp[b].id;
  });

  int suppressed = 0;
  std::vector<std::size_t> intermediate_rows;
  for (const std::size_t i : order) {
    intermediate_rows.clear();
    intermediate_rows.reserve(hp[i].intermediates.size());
    for (const StreamId mid : hp[i].intermediates) {
      const std::size_t row = row_of_stream[static_cast<std::size_t>(mid)];
      assert(row < diagram.num_rows() &&
             "every intermediate stream is itself an HP member");
      intermediate_rows.push_back(row);
    }
    suppressed += diagram.relax_indirect_row(
        row_of_stream[static_cast<std::size_t>(hp[i].id)], intermediate_rows);
  }
  return suppressed;
}

TimingDiagram DelayBoundCalculator::build_diagram(StreamId j, const HpSet& hp,
                                                  Time horizon,
                                                  bool do_relax) const {
  TimingDiagram diagram(make_rows(hp), horizon, config_.carry_over);
  if (do_relax) {
    relax(j, hp, diagram);
  }
  return diagram;
}

void DelayBoundCalculator::evaluate(StreamId j, const HpSet& hp,
                                    TimingDiagram& diagram,
                                    DelayBoundResult& result) const {
  OBS_SPAN("diagram_evaluate");
  const bool want_relax = config_.relaxation == IndirectRelaxation::kInstance &&
                          result.indirect_elements > 0 && !config_.carry_over;
  result.suppressed_instances = want_relax ? relax(j, hp, diagram) : 0;
  result.bound = diagram.accumulate_free(streams_[j].latency);
}

DelayBoundResult DelayBoundCalculator::calc_with_hp(StreamId j,
                                                    const HpSet& hp) const {
  OBS_SPAN("cal_u");
  const auto& s = streams_[j];
  DelayBoundResult result;
  for (const auto& e : hp) {
    if (e.mode == BlockMode::kIndirect) {
      ++result.indirect_elements;
    } else {
      ++result.direct_elements;
    }
  }

  if (config_.horizon == HorizonPolicy::kDeadline) {
    // The paper's Cal_U scans exactly dtime = D_j slots.
    const Time horizon = std::max<Time>(s.deadline, 1);
    result.horizon_used = horizon;
    if (s.latency > horizon) {
      // Even a contention-free diagram cannot accumulate `latency` free
      // slots before the deadline: infeasible without building anything.
      result.bound = kNoTime;
      return result;
    }
    TimingDiagram diagram(make_rows(hp), horizon, config_.carry_over);
    evaluate(j, hp, diagram, result);
    return result;
  }

  // Extended search: doubling horizons until the bound converges or the
  // cap is hit.  The slot pattern of a shorter horizon is a prefix of a
  // longer one, so the first horizon that yields a bound is final (the
  // indirect relaxation can shift decisions near the horizon edge, which
  // is why the result records the horizon actually used).  One diagram is
  // reset() across the horizons instead of reconstructed from scratch.
  Time horizon = std::max<Time>({s.deadline, config_.initial_horizon, 1});
  TimingDiagram diagram(make_rows(hp), horizon, config_.carry_over);
  for (;;) {
    result.horizon_used = horizon;
    evaluate(j, hp, diagram, result);
    if (result.bound != kNoTime || horizon >= config_.horizon_cap) {
      return result;
    }
    horizon = std::min<Time>(horizon * 2, config_.horizon_cap);
    diagram.reset(horizon);
  }
}

DelayBoundResult DelayBoundCalculator::calc(StreamId j) const {
  assert(j >= 0 && static_cast<std::size_t>(j) < streams_.size());
  assert(full_ != nullptr && "calc() needs a BlockingAnalysis; use "
                             "calc_with_hp with an oracle-only calculator");
  return calc_with_hp(j, full_->hp_set(j));
}

}  // namespace wormrt::core
