#pragma once

#include <memory>

#include "core/hpset.hpp"
#include "core/message_stream.hpp"
#include "topo/mesh.hpp"

/// \file paper_example.hpp
/// The paper's running examples, as reusable fixtures:
///  * the Section 4.4 worked example — five streams on a 10x10 mesh with
///    X-Y routing (Figs. 7-9), and
///  * the Fig. 4/6 timing-diagram toy (three interferers M1..M3 plus the
///    analysed M4 with network latency 6).
/// The quickstart example, the figures bench, and the regression tests
/// all build on these.

namespace wormrt::core::paper {

/// Stream parameters of the Section 4.4 example in the paper's notation
/// M_i = (S_id, R_id, P_i, T_i, C_i, D_i, L_i):
///   M_0 = ((7,3),(7,7), 5, 15, 4, 15,  7)
///   M_1 = ((1,1),(5,4), 4, 10, 2, 10,  8)
///   M_2 = ((2,1),(7,5), 3, 40, 4, 40, 12)
///   M_3 = ((4,1),(8,5), 2, 45, 9, 45, 16)
///   M_4 = ((6,1),(9,3), 1, 50, 6, 50, 10)
/// The L values follow from X-Y hop counts and L = hops + C - 1.
struct Section44 {
  std::shared_ptr<topo::Mesh> mesh;  ///< the 10x10 mesh
  StreamSet streams;                 ///< M_0..M_4
};

/// Builds the Section 4.4 example (X-Y routing on a 10x10 mesh).
Section44 section44();

/// U values the paper reports for the example: (7, 8, 26, 20, 33).
/// Note U_3 = 20 assumes the paper's published HP_3 = {M_1}; under
/// channel-overlap-consistent HP construction HP_3 = {M_1, M_2} and
/// U_3 = 26 (see DESIGN.md).  Both keep the set feasible.
inline constexpr Time kPaperBounds[5] = {7, 8, 26, 20, 33};

/// The HP_3 the paper publishes (direct element M_1 only), for
/// reproducing U_3 = 20 via DelayBoundCalculator::calc_with_hp.
HpSet paper_hp3();

}  // namespace wormrt::core::paper
