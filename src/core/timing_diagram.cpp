#include "core/timing_diagram.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

#include "obs/trace.hpp"

namespace wormrt::core {

namespace {

/// The \p n lowest set bits of \p x (n <= popcount(x)).
inline std::uint64_t lowest_n_set(std::uint64_t x, int n) {
  std::uint64_t rest = x;
  for (int i = 0; i < n; ++i) {
    rest &= rest - 1;  // clear the lowest set bit
  }
  return x ^ rest;
}

/// Bits [lo, hi] of a word, 0 <= lo <= hi <= 63.
inline std::uint64_t span_mask(unsigned lo, unsigned hi) {
  const std::uint64_t upto =
      hi == 63 ? ~std::uint64_t{0} : ((std::uint64_t{1} << (hi + 1)) - 1);
  return upto & (~std::uint64_t{0} << lo);
}

}  // namespace

TimingDiagram::TimingDiagram(std::vector<RowSpec> rows, Time horizon,
                             bool carry_over)
    : rows_(std::move(rows)), horizon_(horizon), carry_over_(carry_over) {
  for (std::size_t r = 1; r < rows_.size(); ++r) {
    assert((rows_[r - 1].priority > rows_[r].priority ||
            (rows_[r - 1].priority == rows_[r].priority &&
             rows_[r - 1].stream < rows_[r].stream)) &&
           "rows must be sorted by non-increasing priority");
  }
  for (const RowSpec& r : rows_) {
    assert(r.period >= 1 && r.length >= 1);
    (void)r;
  }
  suppressed_.resize(rows_.size());
  reset(horizon);
}

void TimingDiagram::reset(Time horizon) {
  OBS_SPAN("diagram_build");
  assert(horizon >= 1);
  horizon_ = horizon;
  words_ = (static_cast<std::size_t>(horizon_) + kBits - 1) / kBits;
  busy_.assign(words_, 0);
  alloc_.assign(rows_.size() * words_, 0);
  wait_.assign(rows_.size() * words_, 0);
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    suppressed_[r].assign(num_windows(r), 0);
  }
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    allocate_row(r);
  }
}

std::size_t TimingDiagram::num_windows(std::size_t r) const {
  const Time period = rows_.at(r).period;
  return static_cast<std::size_t>((horizon_ + period - 1) / period);
}

Time TimingDiagram::allocate_range(std::uint64_t* alloc, std::uint64_t* wait,
                                   Time start, Time end, Time demand) {
  if (demand <= 0 || start >= end) {
    return 0;
  }
  Time allocated = 0;
  const std::size_t w0 = word_of(start);
  const std::size_t w1 = word_of(end - 1);
  for (std::size_t w = w0; w <= w1; ++w) {
    const unsigned lo =
        w == w0 ? static_cast<unsigned>(start % static_cast<Time>(kBits)) : 0;
    const unsigned hi =
        w == w1 ? static_cast<unsigned>((end - 1) % static_cast<Time>(kBits))
                : 63u;
    const std::uint64_t mask = span_mask(lo, hi);
    const std::uint64_t busy_w = busy_[w];
    const std::uint64_t free_mask = ~busy_w & mask;
    const Time cnt = std::popcount(free_mask);
    if (free_mask == mask) {
      // Nothing busy in the scanned region — the common head-of-window
      // case: the taken slots are contiguous, no per-bit select needed.
      if (cnt < demand - allocated) {
        alloc[w] |= mask;
        busy_[w] |= mask;
        allocated += cnt;
        continue;
      }
      const auto need = static_cast<unsigned>(demand - allocated);
      const std::uint64_t taken = span_mask(lo, lo + need - 1);
      alloc[w] |= taken;
      busy_[w] |= taken;
      return demand;
    }
    if (cnt < demand - allocated) {
      // The whole masked region is scanned: take every free slot, wait on
      // every busy one.
      alloc[w] |= free_mask;
      wait[w] |= busy_w & mask;
      busy_[w] |= free_mask;
      allocated += cnt;
    } else {
      // The scan stops at the slot that satisfies the demand: take the
      // first `need` free slots, wait only on busy slots before it.
      const int need = static_cast<int>(demand - allocated);
      const std::uint64_t taken = lowest_n_set(free_mask, need);
      const auto last = static_cast<unsigned>(63 - std::countl_zero(taken));
      const std::uint64_t scanned = mask & span_mask(0, last);
      alloc[w] |= taken;
      wait[w] |= busy_w & scanned;
      busy_[w] |= taken;
      return demand;
    }
  }
  return allocated;
}

void TimingDiagram::allocate_row(std::size_t r) {
  std::uint64_t* alloc = row_alloc(r);
  std::uint64_t* wait = row_wait(r);
  std::fill(alloc, alloc + words_, 0);
  std::fill(wait, wait + words_, 0);
  const Time period = rows_[r].period;
  const Time length = rows_[r].length;

  if (!carry_over_) {
    // Paper semantics: each instance competes only inside its own window
    // and the remainder is dropped at the window end.
    const std::size_t windows = num_windows(r);
    for (std::size_t w = 0; w < windows; ++w) {
      if (suppressed_[r][w] != 0) {
        continue;
      }
      const Time start = static_cast<Time>(w) * period;
      const Time end = std::min(start + period, horizon_);
      allocate_range(alloc, wait, start, end, length);
    }
    return;
  }

  // Carry-over semantics: unserved demand backlogs across windows.
  // Suppression is not defined in this mode (see relax_indirect_row).
  Time pending = 0;
  for (Time start = 0; start < horizon_; start += period) {
    pending += length;
    const Time end = std::min(start + period, horizon_);
    pending -= allocate_range(alloc, wait, start, end, pending);
  }
}

void TimingDiagram::rebuild_from(std::size_t from) {
  // busy_ must reflect exactly the allocations of rows above `from`.
  std::fill(busy_.begin(), busy_.end(), 0);
  for (std::size_t r = 0; r < from; ++r) {
    const std::uint64_t* alloc = row_alloc(r);
    for (std::size_t w = 0; w < words_; ++w) {
      busy_[w] |= alloc[w];
    }
  }
  for (std::size_t r = from; r < rows_.size(); ++r) {
    allocate_row(r);
  }
}

int TimingDiagram::relax_indirect_row(
    std::size_t r, const std::vector<std::size_t>& intermediate_rows) {
  assert(!carry_over_ &&
         "indirect relaxation requires window-local instances");
  assert(r < rows_.size());
  int suppressed_count = 0;
  const Time period = rows_[r].period;
  const std::size_t windows = num_windows(r);
  const std::uint64_t* alloc = row_alloc(r);
  const std::uint64_t* wait = row_wait(r);
  for (std::size_t w = 0; w < windows; ++w) {
    if (suppressed_[r][w] != 0) {
      continue;
    }
    const Time start = static_cast<Time>(w) * period;
    const Time end = std::min(start + period, horizon_);
    // Footprint of the instance: its ALLOCATED and WAITING slots.  The
    // instance survives iff some intermediate row is active during one of
    // those slots.
    bool has_footprint = false;
    bool intermediate_seen = false;
    const std::size_t kw0 = word_of(start);
    const std::size_t kw1 = word_of(end - 1);
    for (std::size_t kw = kw0; kw <= kw1 && !intermediate_seen; ++kw) {
      const unsigned lo =
          kw == kw0 ? static_cast<unsigned>(start % static_cast<Time>(kBits))
                    : 0;
      const unsigned hi =
          kw == kw1
              ? static_cast<unsigned>((end - 1) % static_cast<Time>(kBits))
              : 63u;
      const std::uint64_t footprint =
          (alloc[kw] | wait[kw]) & span_mask(lo, hi);
      if (footprint == 0) {
        continue;
      }
      has_footprint = true;
      for (const std::size_t ir : intermediate_rows) {
        if ((footprint & (row_alloc(ir)[kw] | row_wait(ir)[kw])) != 0) {
          intermediate_seen = true;
          break;
        }
      }
    }
    if (has_footprint && !intermediate_seen) {
      // No intermediate stream exists anywhere under this instance: the
      // indirect blocker cannot actually reach the analysed stream here.
      suppressed_[r][w] = 1;
      ++suppressed_count;
    }
  }
  if (suppressed_count > 0) {
    rebuild_from(r);  // row r drops the instances; rows below compact
  }
  return suppressed_count;
}

Time TimingDiagram::accumulate_free(Time required) const {
  assert(required >= 1);
  Time gained = 0;
  for (std::size_t w = 0; w < words_; ++w) {
    const Time word_start = static_cast<Time>(w * kBits);
    std::uint64_t free_mask = ~busy_[w];
    if (horizon_ - word_start < static_cast<Time>(kBits)) {
      // Tail word: slots at and beyond the horizon do not exist.
      free_mask &= span_mask(0, static_cast<unsigned>(horizon_ - word_start - 1));
    }
    const Time cnt = std::popcount(free_mask);
    if (gained + cnt >= required) {
      const int need = static_cast<int>(required - gained);
      const std::uint64_t upto = lowest_n_set(free_mask, need);
      const auto last = static_cast<unsigned>(63 - std::countl_zero(upto));
      return word_start + static_cast<Time>(last) +
             1;  // the paper reports 1-indexed completion times
    }
    gained += cnt;
    if (required - gained > horizon_ - word_start - static_cast<Time>(kBits)) {
      return kNoTime;  // even all-free remaining slots cannot reach it
    }
  }
  return kNoTime;
}

Time TimingDiagram::allocated_before(std::size_t r, Time end) const {
  assert(r < rows_.size());
  end = std::min(end, horizon_);
  if (end <= 0) {
    return 0;
  }
  const std::uint64_t* alloc = row_alloc(r);
  Time count = 0;
  const std::size_t w1 = word_of(end - 1);
  for (std::size_t w = 0; w < w1; ++w) {
    count += std::popcount(alloc[w]);
  }
  const auto hi = static_cast<unsigned>((end - 1) % static_cast<Time>(kBits));
  count += std::popcount(alloc[w1] & span_mask(0, hi));
  return count;
}

std::string TimingDiagram::render() const {
  std::string out;
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    out += "M" + std::to_string(rows_[r].stream) + " |";
    for (Time t = 0; t < horizon_; ++t) {
      switch (at(r, t)) {
        case Slot::kAllocated: out += '#'; break;
        case Slot::kWaiting: out += '.'; break;
        case Slot::kFree: out += ' '; break;
      }
    }
    out += "|\n";
  }
  out += "free|";
  for (Time t = 0; t < horizon_; ++t) {
    out += free_at_bottom(t) ? 'F' : ' ';
  }
  out += "|\n";
  return out;
}

}  // namespace wormrt::core
