#include "core/timing_diagram.hpp"

#include <algorithm>
#include <cassert>

namespace wormrt::core {

TimingDiagram::TimingDiagram(std::vector<RowSpec> rows, Time horizon,
                             bool carry_over)
    : rows_(std::move(rows)), horizon_(horizon), carry_over_(carry_over) {
  assert(horizon_ >= 1);
  for (std::size_t r = 1; r < rows_.size(); ++r) {
    assert((rows_[r - 1].priority > rows_[r].priority ||
            (rows_[r - 1].priority == rows_[r].priority &&
             rows_[r - 1].stream < rows_[r].stream)) &&
           "rows must be sorted by non-increasing priority");
  }
  slots_.resize(rows_.size());
  suppressed_.resize(rows_.size());
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    assert(rows_[r].period >= 1 && rows_[r].length >= 1);
    slots_[r].assign(static_cast<std::size_t>(horizon_), 0);
    suppressed_[r].assign(num_windows(r), 0);
  }
  busy_.assign(static_cast<std::size_t>(horizon_), 0);
  rebuild_from(0);
}

std::size_t TimingDiagram::num_windows(std::size_t r) const {
  const Time period = rows_.at(r).period;
  return static_cast<std::size_t>((horizon_ + period - 1) / period);
}

void TimingDiagram::allocate_row(std::size_t r) {
  auto& row = slots_[r];
  std::fill(row.begin(), row.end(), static_cast<std::uint8_t>(Slot::kFree));
  const Time period = rows_[r].period;
  const Time length = rows_[r].length;

  if (!carry_over_) {
    // Paper semantics: each instance competes only inside its own window
    // and the remainder is dropped at the window end.
    const std::size_t windows = num_windows(r);
    for (std::size_t w = 0; w < windows; ++w) {
      if (suppressed_[r][w] != 0) {
        continue;
      }
      const Time start = static_cast<Time>(w) * period;
      const Time end = std::min(start + period, horizon_);
      Time allocated = 0;
      for (Time t = start; t < end && allocated < length; ++t) {
        const auto idx = static_cast<std::size_t>(t);
        if (busy_[idx] != 0) {
          row[idx] = static_cast<std::uint8_t>(Slot::kWaiting);
        } else {
          row[idx] = static_cast<std::uint8_t>(Slot::kAllocated);
          busy_[idx] = 1;
          ++allocated;
        }
      }
    }
    return;
  }

  // Carry-over semantics: unserved demand backlogs across windows.
  // Suppression is not defined in this mode (see relax_indirect_row).
  Time pending = 0;
  for (Time t = 0; t < horizon_; ++t) {
    if (t % period == 0) {
      pending += length;
    }
    if (pending == 0) {
      continue;
    }
    const auto idx = static_cast<std::size_t>(t);
    if (busy_[idx] != 0) {
      row[idx] = static_cast<std::uint8_t>(Slot::kWaiting);
    } else {
      row[idx] = static_cast<std::uint8_t>(Slot::kAllocated);
      busy_[idx] = 1;
      --pending;
    }
  }
}

void TimingDiagram::rebuild_from(std::size_t from) {
  // busy_ must reflect exactly the allocations of rows above `from`.
  std::fill(busy_.begin(), busy_.end(), 0);
  for (std::size_t r = 0; r < from; ++r) {
    const auto& row = slots_[r];
    for (std::size_t t = 0; t < row.size(); ++t) {
      if (row[t] == static_cast<std::uint8_t>(Slot::kAllocated)) {
        busy_[t] = 1;
      }
    }
  }
  for (std::size_t r = from; r < rows_.size(); ++r) {
    allocate_row(r);
  }
}

int TimingDiagram::relax_indirect_row(
    std::size_t r, const std::vector<std::size_t>& intermediate_rows) {
  assert(!carry_over_ &&
         "indirect relaxation requires window-local instances");
  assert(r < rows_.size());
  int suppressed_count = 0;
  const Time period = rows_[r].period;
  const std::size_t windows = num_windows(r);
  for (std::size_t w = 0; w < windows; ++w) {
    if (suppressed_[r][w] != 0) {
      continue;
    }
    const Time start = static_cast<Time>(w) * period;
    const Time end = std::min(start + period, horizon_);
    // Footprint of the instance: its ALLOCATED and WAITING slots.
    bool has_footprint = false;
    bool intermediate_seen = false;
    for (Time t = start; t < end; ++t) {
      if (!row_active(r, t)) {
        continue;
      }
      has_footprint = true;
      for (const std::size_t ir : intermediate_rows) {
        if (row_active(ir, t)) {
          intermediate_seen = true;
          break;
        }
      }
      if (intermediate_seen) {
        break;
      }
    }
    if (has_footprint && !intermediate_seen) {
      // No intermediate stream exists anywhere under this instance: the
      // indirect blocker cannot actually reach the analysed stream here.
      suppressed_[r][w] = 1;
      ++suppressed_count;
    }
  }
  if (suppressed_count > 0) {
    rebuild_from(r);  // row r drops the instances; rows below compact
  }
  return suppressed_count;
}

Time TimingDiagram::accumulate_free(Time required) const {
  assert(required >= 1);
  Time gained = 0;
  for (Time t = 0; t < horizon_; ++t) {
    if (busy_[static_cast<std::size_t>(t)] == 0) {
      if (++gained == required) {
        return t + 1;  // the paper reports 1-indexed completion times
      }
    }
  }
  return kNoTime;
}

std::string TimingDiagram::render() const {
  std::string out;
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    out += "M" + std::to_string(rows_[r].stream) + " |";
    for (Time t = 0; t < horizon_; ++t) {
      switch (at(r, t)) {
        case Slot::kAllocated: out += '#'; break;
        case Slot::kWaiting: out += '.'; break;
        case Slot::kFree: out += ' '; break;
      }
    }
    out += "|\n";
  }
  out += "free|";
  for (Time t = 0; t < horizon_; ++t) {
    out += free_at_bottom(t) ? 'F' : ' ';
  }
  out += "|\n";
  return out;
}

}  // namespace wormrt::core
