#include "core/latency.hpp"

#include <cassert>

namespace wormrt::core {

Time LatencyModel::network_latency(int hops, Time length) const {
  assert(hops >= 1);
  assert(length >= 1);
  return static_cast<Time>(hops) * router_delay + (length - 1) * flit_cycle;
}

}  // namespace wormrt::core
