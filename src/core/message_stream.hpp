#pragma once

#include <string>
#include <vector>

#include "route/path.hpp"
#include "route/routing.hpp"
#include "util/types.hpp"

/// \file message_stream.hpp
/// The paper's message-stream abstraction: continuous periodic traffic
/// between one source/destination pair, characterized by the seven-tuple
/// (S_id, R_id, P_i, T_i, C_i, D_i, L_i).

namespace wormrt::core {

/// One real-time message stream.  Every message belonging to the stream
/// inherits its priority; the routing path is statically determined.
struct MessageStream {
  StreamId id = kNoStream;       ///< dense 0-based id within a StreamSet
  topo::NodeId src = topo::kNoNode;  ///< S_id
  topo::NodeId dst = topo::kNoNode;  ///< R_id
  Priority priority = 0;         ///< P_i; larger value = more important
  Time period = 0;               ///< T_i, minimum message inter-generation time
  Time length = 0;               ///< C_i, maximum message length in flits
  Time deadline = 0;             ///< D_i, requested delay limit
  Time latency = 0;              ///< L_i, max network latency with no traffic
  route::Path path;              ///< static route (e.g. X-Y)
  /// Which deterministic route order produced `path` (see
  /// route/fault_aware.hpp): 0 = primary dimension order, 1 = reversed.
  /// Part of the stream's durable identity — journaled and snapshotted so
  /// recovery rebuilds the identical path without consulting fault state.
  int route_order = 0;

  /// Long-run fraction of a channel's bandwidth the stream can demand.
  double utilization() const {
    return period > 0 ? static_cast<double>(length) / static_cast<double>(period) : 0.0;
  }
};

/// An ordered collection of message streams with dense ids 0..n-1.
/// This is the "instance" of the paper's message stream feasibility
/// testing problem.
class StreamSet {
 public:
  StreamSet() = default;
  explicit StreamSet(std::vector<MessageStream> streams);

  /// Appends a stream; its id must equal the current size.
  void add(MessageStream stream);

  /// Erases stream \p id, keeping the relative order of the survivors and
  /// renumbering ids above it down by one.  Order preservation matters:
  /// every tie-break in the analysis compares ids with `<`, so bounds are
  /// invariant under this renumbering (the incremental admission engine's
  /// bound cache relies on it).
  void remove_stream(StreamId id);

  std::size_t size() const { return streams_.size(); }
  bool empty() const { return streams_.empty(); }
  const MessageStream& operator[](StreamId id) const {
    return streams_.at(static_cast<std::size_t>(id));
  }
  MessageStream& mutable_stream(StreamId id) {
    return streams_.at(static_cast<std::size_t>(id));
  }
  const std::vector<MessageStream>& streams() const { return streams_; }

  auto begin() const { return streams_.begin(); }
  auto end() const { return streams_.end(); }

  /// Highest priority value present (0 when empty).
  Priority max_priority() const;
  /// Lowest priority value present (0 when empty).
  Priority min_priority() const;

  /// Stream ids sorted by non-increasing priority, ties by ascending id —
  /// the processing order of the paper's Determine-Feasibility GList loop.
  std::vector<StreamId> by_priority_desc() const;

  /// Validates structural invariants (ids dense, parameters positive,
  /// deadline and latency consistent).  Returns an explanation or "".
  std::string validate() const;

 private:
  std::vector<MessageStream> streams_;
};

/// Builds a stream with its path computed by \p routing and its network
/// latency from the default model (hops + C - 1; see latency.hpp).
/// route_order stays 0 (primary): the single-algorithm callers all route
/// in primary dimension order.
MessageStream make_stream(const topo::Topology& topo,
                          const route::RoutingAlgorithm& routing, StreamId id,
                          topo::NodeId src, topo::NodeId dst, Priority priority,
                          Time period, Time length, Time deadline);

/// Builds a stream routed under an explicit persisted route order
/// (route::kRouteOrderPrimary / kRouteOrderReversed) — the fault-aware
/// admission and journal-replay path.  Ignores fault state by design.
MessageStream make_stream_with_order(const topo::Topology& topo, StreamId id,
                                     topo::NodeId src, topo::NodeId dst,
                                     Priority priority, Time period,
                                     Time length, Time deadline,
                                     int route_order);

}  // namespace wormrt::core
