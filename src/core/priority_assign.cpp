#include "core/priority_assign.hpp"

#include <algorithm>
#include <numeric>

#include "core/delay_bound.hpp"

namespace wormrt::core {

namespace {

/// Applies priority n-1-rank ordered by \p better (streams sorted first
/// get the higher priorities).
template <typename Less>
int assign_by_order(StreamSet& streams, Less less) {
  const auto n = static_cast<int>(streams.size());
  std::vector<StreamId> order(streams.size());
  std::iota(order.begin(), order.end(), StreamId{0});
  std::stable_sort(order.begin(), order.end(), less);
  for (int rank = 0; rank < n; ++rank) {
    streams.mutable_stream(order[static_cast<std::size_t>(rank)]).priority =
        n - 1 - rank;
  }
  return n;
}

}  // namespace

int assign_priorities_rate_monotonic(StreamSet& streams) {
  return assign_by_order(streams, [&](StreamId a, StreamId b) {
    if (streams[a].period != streams[b].period) {
      return streams[a].period < streams[b].period;
    }
    return a < b;
  });
}

int assign_priorities_deadline_monotonic(StreamSet& streams) {
  return assign_by_order(streams, [&](StreamId a, StreamId b) {
    if (streams[a].deadline != streams[b].deadline) {
      return streams[a].deadline < streams[b].deadline;
    }
    return a < b;
  });
}

AudsleyResult assign_priorities_audsley(StreamSet& streams,
                                        const AnalysisConfig& config) {
  AudsleyResult result;
  const auto n = static_cast<int>(streams.size());
  if (n == 0) {
    result.feasible = true;
    return result;
  }

  // All streams start tied one level above every level we will assign;
  // a candidate is tested at its final level with every other
  // unassigned stream outranking it.  (Audsley's argument needs the
  // bound to be monotone in the set — not the order — of
  // higher-priority streams; the timing diagram is mildly
  // order-sensitive through row sorting, so this is a near-optimal
  // search rather than a proof-carrying one.  See priority_assign.hpp.)
  const Priority kUnassigned = n;
  for (StreamId i = 0; i < n; ++i) {
    streams.mutable_stream(i).priority = kUnassigned;
  }

  std::vector<StreamId> unassigned(streams.size());
  std::iota(unassigned.begin(), unassigned.end(), StreamId{0});
  // Longest deadline first: the most likely stream to survive at the
  // lowest level, minimising analysis calls.
  std::stable_sort(unassigned.begin(), unassigned.end(),
                   [&](StreamId a, StreamId b) {
                     if (streams[a].deadline != streams[b].deadline) {
                       return streams[a].deadline > streams[b].deadline;
                     }
                     return a < b;
                   });

  BlockingOptions bopts{config.same_priority_blocks,
                        config.ejection_port_overlap,
                        config.injection_port_overlap};
  for (Priority level = 0; level < n; ++level) {
    bool placed = false;
    for (std::size_t c = 0; c < unassigned.size(); ++c) {
      const StreamId candidate = unassigned[c];
      streams.mutable_stream(candidate).priority = level;
      const BlockingAnalysis blocking(streams, bopts);
      const DelayBoundCalculator calc(streams, blocking, config);
      ++result.analysis_calls;
      const Time bound = calc.calc(candidate).bound;
      if (bound != kNoTime && bound <= streams[candidate].deadline) {
        unassigned.erase(unassigned.begin() +
                         static_cast<std::ptrdiff_t>(c));
        placed = true;
        break;
      }
      streams.mutable_stream(candidate).priority = kUnassigned;
    }
    if (!placed) {
      // No stream can live at this level: no assignment reachable by
      // this search is feasible.  Fall back to deadline-monotonic.
      assign_priorities_deadline_monotonic(streams);
      return result;
    }
  }
  result.feasible = true;
  return result;
}

}  // namespace wormrt::core
