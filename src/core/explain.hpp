#pragma once

#include <string>
#include <vector>

#include "core/delay_bound.hpp"
#include "core/hpset.hpp"
#include "core/message_stream.hpp"

/// \file explain.hpp
/// Bound provenance: WHERE a delay bound comes from.  Cal_U reports one
/// number (U_j); explain_bound decomposes it into the terms an operator
/// can act on — the contention-free network latency plus one
/// interference term per HP stream — and the identity
///
///   U_j = L_j + sum over HP rows of (slots allocated before U_j)
///
/// holds EXACTLY when the bound exists: rows of the timing diagram
/// allocate only slots left free by the rows above them, so the per-row
/// allocation counts partition the busy slots of [0, U_j), and
/// accumulate_free places U_j so that exactly L_j free slots precede it.
/// A property test fuzzes random scenarios and asserts the identity
/// against the cached bound (tests/core/test_explain.cpp).
///
/// Provenance is a diagnostic path, not a hot path: it re-runs Cal_U and
/// rebuilds the final diagram once.  The admission service exposes it as
/// the EXPLAIN verb; the CLI renders it with BoundProvenance::render().

namespace wormrt::core {

/// One HP stream's contribution to the analysed stream's bound.
struct InterferenceTerm {
  StreamId id = kNoStream;
  Priority priority = 0;
  BlockMode mode = BlockMode::kDirect;
  Time period = 0;  ///< T of the HP element
  Time length = 0;  ///< C of the HP element
  /// Slots this row transmits in [0, U_j) — its exact delay contribution
  /// (counted over [0, horizon) when the bound does not exist).
  Time slots = 0;
  /// Message instances (period windows) of the row within the horizon.
  std::size_t instances = 0;
  /// Instances removed by the indirect relaxation (Modify_Diagram).
  std::size_t suppressed = 0;
};

/// Full decomposition of one stream's delay bound.
struct BoundProvenance {
  StreamId stream = kNoStream;
  /// U_j; kNoTime when the free slots never reach the latency in time.
  Time bound = kNoTime;
  Time deadline = 0;
  /// L_j — the contention-free network latency (hops + C - 1).
  Time base_latency = 0;
  /// Sum of the terms' slots; bound == base_latency + interference when
  /// the bound exists.
  Time interference = 0;
  Time horizon_used = 0;
  /// Horizon doublings the kExtended search performed (0 under
  /// kDeadline).
  int horizon_doublings = 0;
  /// Total instances removed by the indirect relaxation.
  int suppressed_instances = 0;
  /// True when Cal_U proved infeasibility without building a diagram
  /// (L_j alone exceeds the deadline horizon); terms is empty then.
  bool deadline_pruned = false;
  std::vector<InterferenceTerm> terms;  ///< diagram row order (prio desc)

  /// Human-readable tree, e.g.
  ///   U(stream 3) = 42  [deadline 50, horizon 50, 0 doublings]
  ///   +- base latency         17
  ///   +- interference         25  (2 HP streams)
  ///      +- stream 1  direct    prio 9  T=20 C=4  slots=13  (3 inst)
  ///      +- stream 2  indirect  prio 7  T=25 C=6  slots=12  (2 inst, 1 suppressed)
  std::string render() const;
};

/// Decomposes Cal_U(j) against the explicit HP set \p hp.  Runs the same
/// deterministic computation as calc_with_hp, so `bound` always equals
/// the DelayBoundResult's (and any cached copy of it).
BoundProvenance explain_bound(const DelayBoundCalculator& calc, StreamId j,
                              const HpSet& hp);

}  // namespace wormrt::core
