#pragma once

#include "core/hpset.hpp"

/// \file rm_bound.hpp
/// Mutka-style rate-monotonic bound: the comparison point the paper's
/// introduction argues against.  It treats a stream's whole path as one
/// preemptively shared resource and runs the classic response-time
/// iteration
///     R = L_j + sum_{k in direct HP_j} ceil(R / T_k) * C_k
/// over the *direct* higher-priority interferers only — no blocking
/// chains, no timing diagram, no window-dropping.  Because interference
/// is summed without the diagram's per-window capping, the bound is
/// usually looser than the paper's U, and because indirect blockers are
/// ignored entirely it can also be optimistic; both effects are what the
/// ablation bench quantifies ("mere application of the rate monotonic
/// algorithm ... is not appropriate", Section 1).

namespace wormrt::baseline {

struct RmBoundResult {
  /// Fixpoint of the response-time recurrence, or kNoTime when it did
  /// not converge below \p cap (utilization over the path >= 1).
  Time bound = kNoTime;
  /// Iterations of the recurrence executed.
  int iterations = 0;
};

/// Computes the rate-monotonic response-time bound of stream \p j.
RmBoundResult rm_response_time_bound(const core::StreamSet& streams,
                                     const core::BlockingAnalysis& blocking,
                                     StreamId j, Time cap = Time{1} << 22);

}  // namespace wormrt::baseline
