#include "baselines/rm_bound.hpp"

#include <cassert>

namespace wormrt::baseline {

RmBoundResult rm_response_time_bound(const core::StreamSet& streams,
                                     const core::BlockingAnalysis& blocking,
                                     StreamId j, Time cap) {
  const auto& s = streams[j];
  RmBoundResult result;

  // Direct interferers only (the naive transfer of processor RM analysis
  // to a wormhole path ignores blocking chains).
  std::vector<StreamId> interferers;
  for (const auto& e : blocking.hp_set(j)) {
    if (e.mode == core::BlockMode::kDirect) {
      interferers.push_back(e.id);
    }
  }

  Time r = s.latency;
  for (;;) {
    ++result.iterations;
    Time next = s.latency;
    for (const StreamId k : interferers) {
      const auto& hk = streams[k];
      next += ((r + hk.period - 1) / hk.period) * hk.length;
    }
    if (next == r) {
      result.bound = r;
      return result;
    }
    if (next > cap) {
      return result;  // diverged: path utilization at or above 1
    }
    r = next;
  }
}

}  // namespace wormrt::baseline
