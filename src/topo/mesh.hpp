#pragma once

#include "topo/topology.hpp"

/// \file mesh.hpp
/// k-ary n-dimensional mesh: nodes on an integer grid, bidirectional
/// links (modelled as two directed channels) between grid neighbours,
/// no wraparound.  The paper's evaluation network is the 10x10 case.

namespace wormrt::topo {

class Mesh : public Topology {
 public:
  /// Builds a mesh with the given per-dimension radices, e.g. {10, 10}.
  explicit Mesh(std::vector<std::int32_t> radices);

  /// Convenience for the common 2-D case (width = dim 0 = X).
  Mesh(std::int32_t width, std::int32_t height)
      : Mesh(std::vector<std::int32_t>{width, height}) {}

  std::string name() const override;
  int dimensions() const override { return static_cast<int>(radices_.size()); }
  int radix(int dim) const override { return radices_.at(static_cast<std::size_t>(dim)); }
  bool wraps(int) const override { return false; }

 private:
  std::vector<std::int32_t> radices_;
};

}  // namespace wormrt::topo
