#pragma once

#include <string>

#include "topo/channel_graph.hpp"
#include "topo/coord.hpp"

/// \file topology.hpp
/// Abstract interconnection-network topology: a node set with coordinates
/// plus a directed channel graph.  Concrete topologies (mesh, torus,
/// hypercube) build their channel graphs deterministically at
/// construction, so channel ids are stable for a given shape.

namespace wormrt::topo {

class Topology {
 public:
  virtual ~Topology() = default;

  Topology(const Topology&) = delete;
  Topology& operator=(const Topology&) = delete;

  /// Human-readable name, e.g. "mesh(10x10)".
  virtual std::string name() const = 0;

  /// Number of dimensions of the coordinate system.
  virtual int dimensions() const = 0;

  /// Radix (extent) of dimension \p dim.
  virtual int radix(int dim) const = 0;

  /// Whether dimension \p dim wraps around (torus-like).
  virtual bool wraps(int dim) const = 0;

  int num_nodes() const { return num_nodes_; }
  std::size_t num_channels() const { return channels_.size(); }
  const ChannelGraph& channels() const { return channels_; }

  /// Coordinate of node \p id (0 <= id < num_nodes()).
  Coord coord_of(NodeId id) const;

  /// Node at coordinate \p coord; each component must be within radix.
  NodeId node_at(const Coord& coord) const;

  /// True when each coordinate component is within [0, radix).
  bool contains(const Coord& coord) const;

  /// Id of the directed channel from \p src to \p dst, or kNoChannel.
  ChannelId channel_between(NodeId src, NodeId dst) const {
    return channels_.find(src, dst);
  }

  /// Marks a directed channel faulted (link down) or healthy (link up).
  /// The channel set and ids never change — only the fault flag does.
  /// Returns true when the flag actually changed.
  bool set_channel_faulted(ChannelId id, bool faulted) {
    return channels_.set_faulted(id, faulted);
  }

  /// True when the channel is currently marked faulted.
  bool channel_faulted(ChannelId id) const { return channels_.is_faulted(id); }

  /// Stable 64-bit identity of the fabric *shape*: dimensions, radices,
  /// wrap flags, node count, and every channel's endpoints (in id order).
  /// Two topologies with the same fingerprint have identical channel-id
  /// assignments, so persisted stream paths and channel references are
  /// interchangeable between them.  Fault flags are deliberately
  /// excluded — they are dynamic state replayed from the journal, not
  /// identity.
  std::uint64_t fingerprint() const;

 protected:
  /// \p radices defines the shape; node ids enumerate coordinates with
  /// dimension 0 varying fastest (row-major over reversed dims), i.e. for
  /// a WxH mesh id = x + W*y.
  explicit Topology(std::vector<std::int32_t> radices);

  /// Subclasses call this from their constructors to populate channels.
  ChannelGraph& mutable_channels() { return channels_; }

 private:
  std::vector<std::int32_t> radices_;
  std::vector<std::int64_t> strides_;
  int num_nodes_ = 0;
  ChannelGraph channels_;
};

}  // namespace wormrt::topo
