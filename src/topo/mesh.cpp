#include "topo/mesh.hpp"

namespace wormrt::topo {

Mesh::Mesh(std::vector<std::int32_t> radices)
    : Topology(radices), radices_(std::move(radices)) {
  // Deterministic channel enumeration: by node id, then by dimension,
  // negative direction before positive.
  for (NodeId n = 0; n < num_nodes(); ++n) {
    const Coord c = coord_of(n);
    for (std::size_t d = 0; d < radices_.size(); ++d) {
      if (c[d] > 0) {
        Coord m = c;
        --m[d];
        mutable_channels().add(n, node_at(m));
      }
      if (c[d] + 1 < radices_[d]) {
        Coord m = c;
        ++m[d];
        mutable_channels().add(n, node_at(m));
      }
    }
  }
}

std::string Mesh::name() const {
  std::string out = "mesh(";
  for (std::size_t d = 0; d < radices_.size(); ++d) {
    if (d != 0) {
      out += "x";
    }
    out += std::to_string(radices_[d]);
  }
  out += ")";
  return out;
}

}  // namespace wormrt::topo
