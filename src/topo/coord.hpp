#pragma once

#include <cstdint>
#include <string>
#include <vector>

/// \file coord.hpp
/// Node identifiers and multi-dimensional coordinates.

namespace wormrt::topo {

/// Dense 0-based node identifier within a topology.
using NodeId = std::int32_t;

/// Sentinel node id.
inline constexpr NodeId kNoNode = -1;

/// Dense 0-based identifier of a directed physical channel.
using ChannelId = std::int32_t;

/// Sentinel channel id.
inline constexpr ChannelId kNoChannel = -1;

/// Multi-dimensional coordinate; `coord[d]` is the position along
/// dimension d.  Dimension 0 is the "X" dimension of the paper's X-Y
/// routing (corrected first).
using Coord = std::vector<std::int32_t>;

/// Renders "(x,y,...)" for diagnostics.
std::string to_string(const Coord& coord);

}  // namespace wormrt::topo
