#pragma once

#include "topo/topology.hpp"

/// \file torus.hpp
/// k-ary n-dimensional torus: a mesh whose dimensions wrap around.
/// Radix-2 dimensions get a single bidirectional link (the +1 and -1
/// neighbours coincide).

namespace wormrt::topo {

class Torus : public Topology {
 public:
  explicit Torus(std::vector<std::int32_t> radices);

  Torus(std::int32_t width, std::int32_t height)
      : Torus(std::vector<std::int32_t>{width, height}) {}

  std::string name() const override;
  int dimensions() const override { return static_cast<int>(radices_.size()); }
  int radix(int dim) const override { return radices_.at(static_cast<std::size_t>(dim)); }
  bool wraps(int dim) const override { return radices_.at(static_cast<std::size_t>(dim)) > 1; }

 private:
  std::vector<std::int32_t> radices_;
};

}  // namespace wormrt::topo
