#include "topo/topology.hpp"

#include <cassert>

namespace wormrt::topo {

Topology::Topology(std::vector<std::int32_t> radices)
    : radices_(std::move(radices)) {
  assert(!radices_.empty());
  std::int64_t total = 1;
  strides_.resize(radices_.size());
  for (std::size_t d = 0; d < radices_.size(); ++d) {
    assert(radices_[d] >= 1);
    strides_[d] = total;
    total *= radices_[d];
  }
  assert(total > 0 && total <= (std::int64_t{1} << 30));
  num_nodes_ = static_cast<int>(total);
  channels_.reserve_nodes(static_cast<std::size_t>(num_nodes_));
}

Coord Topology::coord_of(NodeId id) const {
  assert(id >= 0 && id < num_nodes_);
  Coord coord(radices_.size());
  std::int64_t rest = id;
  for (std::size_t d = 0; d < radices_.size(); ++d) {
    coord[d] = static_cast<std::int32_t>(rest % radices_[d]);
    rest /= radices_[d];
  }
  return coord;
}

NodeId Topology::node_at(const Coord& coord) const {
  assert(coord.size() == radices_.size());
  std::int64_t id = 0;
  for (std::size_t d = 0; d < radices_.size(); ++d) {
    assert(coord[d] >= 0 && coord[d] < radices_[d]);
    id += coord[d] * strides_[d];
  }
  return static_cast<NodeId>(id);
}

bool Topology::contains(const Coord& coord) const {
  if (coord.size() != radices_.size()) {
    return false;
  }
  for (std::size_t d = 0; d < radices_.size(); ++d) {
    if (coord[d] < 0 || coord[d] >= radices_[d]) {
      return false;
    }
  }
  return true;
}

}  // namespace wormrt::topo
