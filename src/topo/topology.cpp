#include "topo/topology.hpp"

#include <cassert>

namespace wormrt::topo {

Topology::Topology(std::vector<std::int32_t> radices)
    : radices_(std::move(radices)) {
  assert(!radices_.empty());
  std::int64_t total = 1;
  strides_.resize(radices_.size());
  for (std::size_t d = 0; d < radices_.size(); ++d) {
    assert(radices_[d] >= 1);
    strides_[d] = total;
    total *= radices_[d];
  }
  assert(total > 0 && total <= (std::int64_t{1} << 30));
  num_nodes_ = static_cast<int>(total);
  channels_.reserve_nodes(static_cast<std::size_t>(num_nodes_));
}

Coord Topology::coord_of(NodeId id) const {
  assert(id >= 0 && id < num_nodes_);
  Coord coord(radices_.size());
  std::int64_t rest = id;
  for (std::size_t d = 0; d < radices_.size(); ++d) {
    coord[d] = static_cast<std::int32_t>(rest % radices_[d]);
    rest /= radices_[d];
  }
  return coord;
}

NodeId Topology::node_at(const Coord& coord) const {
  assert(coord.size() == radices_.size());
  std::int64_t id = 0;
  for (std::size_t d = 0; d < radices_.size(); ++d) {
    assert(coord[d] >= 0 && coord[d] < radices_[d]);
    id += coord[d] * strides_[d];
  }
  return static_cast<NodeId>(id);
}

std::uint64_t Topology::fingerprint() const {
  // FNV-1a over the shape description.  Not cryptographic — it guards
  // against operator error (recovering a state dir onto a different
  // fabric), not adversaries.
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (8 * byte)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  mix(static_cast<std::uint64_t>(radices_.size()));
  for (std::size_t d = 0; d < radices_.size(); ++d) {
    mix(static_cast<std::uint64_t>(radices_[d]));
    mix(wraps(static_cast<int>(d)) ? 1 : 0);
  }
  mix(static_cast<std::uint64_t>(num_nodes_));
  mix(channels_.size());
  for (std::size_t c = 0; c < channels_.size(); ++c) {
    const Channel& ch = channels_.channel(static_cast<ChannelId>(c));
    mix((static_cast<std::uint64_t>(static_cast<std::uint32_t>(ch.src)) << 32) |
        static_cast<std::uint32_t>(ch.dst));
  }
  return h;
}

bool Topology::contains(const Coord& coord) const {
  if (coord.size() != radices_.size()) {
    return false;
  }
  for (std::size_t d = 0; d < radices_.size(); ++d) {
    if (coord[d] < 0 || coord[d] >= radices_[d]) {
      return false;
    }
  }
  return true;
}

}  // namespace wormrt::topo
