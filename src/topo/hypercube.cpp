#include "topo/hypercube.hpp"

#include <cassert>

namespace wormrt::topo {

namespace {
std::vector<std::int32_t> radices_for(int order) {
  assert(order >= 1 && order <= 20);
  return std::vector<std::int32_t>(static_cast<std::size_t>(order), 2);
}
}  // namespace

Hypercube::Hypercube(int order) : Topology(radices_for(order)), order_(order) {
  // Node id IS the coordinate bit string (dimension d = bit d) because the
  // base class enumerates dimension 0 fastest with radix 2 strides.
  for (NodeId n = 0; n < num_nodes(); ++n) {
    for (int d = 0; d < order_; ++d) {
      const NodeId m = n ^ (NodeId{1} << d);
      mutable_channels().add(n, m);
    }
  }
}

std::string Hypercube::name() const {
  return "hypercube(" + std::to_string(order_) + ")";
}

}  // namespace wormrt::topo
