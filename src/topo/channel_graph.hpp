#pragma once

#include <unordered_map>
#include <vector>

#include "topo/coord.hpp"

/// \file channel_graph.hpp
/// The directed physical-channel graph of a topology: every unidirectional
/// link gets a stable dense id, used as the resource index by both the
/// delay-bound analysis (path overlap) and the flit-level simulator.

namespace wormrt::topo {

/// One directed physical channel (unidirectional link).
struct Channel {
  NodeId src = kNoNode;
  NodeId dst = kNoNode;
};

/// Enumeration of the directed channels of a network.  The channel *set*
/// is immutable after construction — ids are assigned in insertion order,
/// so a topology that builds its channels deterministically yields stable
/// ids across runs — but each channel carries a mutable fault flag so the
/// live service can model links going down and coming back up without
/// renumbering anything.
class ChannelGraph {
 public:
  /// Adds the directed channel src->dst; returns its id.
  /// Duplicate (src,dst) pairs are rejected via assertion.
  ChannelId add(NodeId src, NodeId dst);

  std::size_t size() const { return channels_.size(); }
  const Channel& channel(ChannelId id) const { return channels_.at(static_cast<std::size_t>(id)); }

  /// Id of the channel src->dst, or kNoChannel when absent.
  ChannelId find(NodeId src, NodeId dst) const;

  /// All channel ids leaving \p src, in insertion order.
  const std::vector<ChannelId>& outgoing(NodeId src) const;

  /// All channel ids entering \p dst, in insertion order.
  const std::vector<ChannelId>& incoming(NodeId dst) const;

  /// Declares the number of nodes (for adjacency sizing).  Must be called
  /// before add().
  void reserve_nodes(std::size_t n);

  /// Marks the channel faulted (link down) or healthy (link up).
  /// Returns true when the flag actually changed.
  bool set_faulted(ChannelId id, bool faulted);

  /// True when the channel is currently marked faulted.
  bool is_faulted(ChannelId id) const {
    return faulted_.at(static_cast<std::size_t>(id)) != 0;
  }

  /// Number of channels currently marked faulted.
  std::size_t num_faulted() const { return num_faulted_; }

 private:
  std::vector<Channel> channels_;
  std::vector<std::uint8_t> faulted_;
  std::size_t num_faulted_ = 0;
  std::unordered_map<std::uint64_t, ChannelId> by_endpoints_;
  std::vector<std::vector<ChannelId>> out_;
  std::vector<std::vector<ChannelId>> in_;

  static std::uint64_t key(NodeId src, NodeId dst);
};

}  // namespace wormrt::topo
