#pragma once

#include <unordered_map>
#include <vector>

#include "topo/coord.hpp"

/// \file channel_graph.hpp
/// The directed physical-channel graph of a topology: every unidirectional
/// link gets a stable dense id, used as the resource index by both the
/// delay-bound analysis (path overlap) and the flit-level simulator.

namespace wormrt::topo {

/// One directed physical channel (unidirectional link).
struct Channel {
  NodeId src = kNoNode;
  NodeId dst = kNoNode;
};

/// Immutable enumeration of the directed channels of a network.
/// Channel ids are assigned in insertion order, so a topology that builds
/// its channels deterministically yields stable ids across runs.
class ChannelGraph {
 public:
  /// Adds the directed channel src->dst; returns its id.
  /// Duplicate (src,dst) pairs are rejected via assertion.
  ChannelId add(NodeId src, NodeId dst);

  std::size_t size() const { return channels_.size(); }
  const Channel& channel(ChannelId id) const { return channels_.at(static_cast<std::size_t>(id)); }

  /// Id of the channel src->dst, or kNoChannel when absent.
  ChannelId find(NodeId src, NodeId dst) const;

  /// All channel ids leaving \p src, in insertion order.
  const std::vector<ChannelId>& outgoing(NodeId src) const;

  /// All channel ids entering \p dst, in insertion order.
  const std::vector<ChannelId>& incoming(NodeId dst) const;

  /// Declares the number of nodes (for adjacency sizing).  Must be called
  /// before add().
  void reserve_nodes(std::size_t n);

 private:
  std::vector<Channel> channels_;
  std::unordered_map<std::uint64_t, ChannelId> by_endpoints_;
  std::vector<std::vector<ChannelId>> out_;
  std::vector<std::vector<ChannelId>> in_;

  static std::uint64_t key(NodeId src, NodeId dst);
};

}  // namespace wormrt::topo
