#pragma once

#include "topo/topology.hpp"

/// \file hypercube.hpp
/// n-dimensional binary hypercube: 2^n nodes, node ids are bit strings,
/// links connect ids differing in exactly one bit.  Structurally a mesh
/// with radix 2 in every dimension; kept as a named class because the
/// paper's related work (and e-cube routing) speaks of hypercubes.

namespace wormrt::topo {

class Hypercube : public Topology {
 public:
  /// Requires 1 <= order <= 20.
  explicit Hypercube(int order);

  std::string name() const override;
  int dimensions() const override { return order_; }
  int radix(int) const override { return 2; }
  bool wraps(int) const override { return false; }

  int order() const { return order_; }

 private:
  int order_;
};

}  // namespace wormrt::topo
