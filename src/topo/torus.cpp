#include "topo/torus.hpp"

namespace wormrt::topo {

Torus::Torus(std::vector<std::int32_t> radices)
    : Topology(radices), radices_(std::move(radices)) {
  for (NodeId n = 0; n < num_nodes(); ++n) {
    const Coord c = coord_of(n);
    for (std::size_t d = 0; d < radices_.size(); ++d) {
      const std::int32_t k = radices_[d];
      if (k == 1) {
        continue;  // degenerate dimension, no links
      }
      // Neighbour in the negative direction (wraps).
      Coord minus = c;
      minus[d] = (c[d] + k - 1) % k;
      // Neighbour in the positive direction (wraps).
      Coord plus = c;
      plus[d] = (c[d] + 1) % k;
      const NodeId minus_id = node_at(minus);
      const NodeId plus_id = node_at(plus);
      if (k == 2) {
        // +1 and -1 coincide: one directed channel per node pair per dim.
        if (mutable_channels().find(n, plus_id) == kNoChannel) {
          mutable_channels().add(n, plus_id);
        }
      } else {
        mutable_channels().add(n, minus_id);
        mutable_channels().add(n, plus_id);
      }
    }
  }
}

std::string Torus::name() const {
  std::string out = "torus(";
  for (std::size_t d = 0; d < radices_.size(); ++d) {
    if (d != 0) {
      out += "x";
    }
    out += std::to_string(radices_[d]);
  }
  out += ")";
  return out;
}

}  // namespace wormrt::topo
