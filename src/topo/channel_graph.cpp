#include "topo/channel_graph.hpp"

#include <cassert>

namespace wormrt::topo {

std::string to_string(const Coord& coord) {
  std::string out = "(";
  for (std::size_t i = 0; i < coord.size(); ++i) {
    if (i != 0) {
      out += ",";
    }
    out += std::to_string(coord[i]);
  }
  out += ")";
  return out;
}

std::uint64_t ChannelGraph::key(NodeId src, NodeId dst) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32) |
         static_cast<std::uint32_t>(dst);
}

void ChannelGraph::reserve_nodes(std::size_t n) {
  assert(channels_.empty());
  out_.resize(n);
  in_.resize(n);
}

ChannelId ChannelGraph::add(NodeId src, NodeId dst) {
  assert(src >= 0 && static_cast<std::size_t>(src) < out_.size());
  assert(dst >= 0 && static_cast<std::size_t>(dst) < in_.size());
  assert(src != dst && "self-channels are not physical links");
  const auto id = static_cast<ChannelId>(channels_.size());
  const bool inserted = by_endpoints_.emplace(key(src, dst), id).second;
  assert(inserted && "duplicate directed channel");
  (void)inserted;
  channels_.push_back(Channel{src, dst});
  faulted_.push_back(0);
  out_[static_cast<std::size_t>(src)].push_back(id);
  in_[static_cast<std::size_t>(dst)].push_back(id);
  return id;
}

bool ChannelGraph::set_faulted(ChannelId id, bool faulted) {
  auto& flag = faulted_.at(static_cast<std::size_t>(id));
  if ((flag != 0) == faulted) {
    return false;
  }
  flag = faulted ? 1 : 0;
  num_faulted_ += faulted ? 1 : -1;
  return true;
}

ChannelId ChannelGraph::find(NodeId src, NodeId dst) const {
  const auto it = by_endpoints_.find(key(src, dst));
  return it == by_endpoints_.end() ? kNoChannel : it->second;
}

const std::vector<ChannelId>& ChannelGraph::outgoing(NodeId src) const {
  return out_.at(static_cast<std::size_t>(src));
}

const std::vector<ChannelId>& ChannelGraph::incoming(NodeId dst) const {
  return in_.at(static_cast<std::size_t>(dst));
}

}  // namespace wormrt::topo
