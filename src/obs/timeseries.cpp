#include "obs/timeseries.hpp"

#include <utility>

namespace wormrt::obs {

TimeSeries::TimeSeries(std::string name, std::size_t capacity)
    : name_(std::move(name)),
      capacity_(capacity == 0 ? 1 : capacity),
      ring_(capacity_) {}

void TimeSeries::append(std::int64_t t_ms, double value) {
  std::lock_guard<std::mutex> lk(mu_);
  if (size_ < capacity_) {
    ring_[(start_ + size_) % capacity_] = {t_ms, value};
    ++size_;
  } else {
    ring_[start_] = {t_ms, value};
    start_ = (start_ + 1) % capacity_;
  }
}

std::vector<TimeSeries::Sample> TimeSeries::window(
    std::int64_t since_ms) const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<Sample> out;
  out.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) {
    const Sample& s = ring_[(start_ + i) % capacity_];
    if (s.t_ms >= since_ms) {
      out.push_back(s);
    }
  }
  return out;
}

std::size_t TimeSeries::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return size_;
}

Sampler::Sampler(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      epoch_(std::chrono::steady_clock::now()) {}

Sampler::~Sampler() { stop(); }

void Sampler::add_series(const std::string& name, Probe probe) {
  std::lock_guard<std::mutex> lk(mu_);
  series_.emplace_back(name, capacity_);
  probes_.push_back(std::move(probe));
}

std::int64_t Sampler::now_ms() const {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void Sampler::sample_once() {
  // The series set is append-only and start() forbids concurrent
  // add_series, so probing without mu_ is safe — and required: a probe
  // may itself be slow (histogram merge) and must not block stop().
  const std::int64_t t = now_ms();
  for (std::size_t i = 0; i < probes_.size(); ++i) {
    series_[i].append(t, probes_[i]());
  }
}

void Sampler::start(int interval_ms) {
  std::lock_guard<std::mutex> lk(mu_);
  if (running_) {
    return;
  }
  interval_ms_ = interval_ms < 1 ? 1 : interval_ms;
  stop_requested_ = false;
  running_ = true;
  thread_ = std::thread([this] { run(); });
}

void Sampler::stop() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!running_) {
      return;
    }
    stop_requested_ = true;
  }
  cv_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> lk(mu_);
  running_ = false;
}

bool Sampler::running() const {
  std::lock_guard<std::mutex> lk(mu_);
  return running_;
}

void Sampler::run() {
  sample_once();
  std::unique_lock<std::mutex> lk(mu_);
  while (!stop_requested_) {
    cv_.wait_for(lk, std::chrono::milliseconds(interval_ms_),
                 [this] { return stop_requested_; });
    if (stop_requested_) {
      return;
    }
    lk.unlock();
    sample_once();
    lk.lock();
  }
}

std::vector<const TimeSeries*> Sampler::series() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<const TimeSeries*> out;
  out.reserve(series_.size());
  for (const TimeSeries& s : series_) {
    out.push_back(&s);
  }
  return out;
}

const TimeSeries* Sampler::find(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  for (const TimeSeries& s : series_) {
    if (s.name() == name) {
      return &s;
    }
  }
  return nullptr;
}

}  // namespace wormrt::obs
