#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "obs/metrics.hpp"

/// \file conformance.hpp
/// Runtime conformance monitoring: does the fabric keep the analytic
/// contract?
///
/// The paper's guarantee is that an admitted stream's observed latency
/// never exceeds its delay bound U_i — on the flit-valid domain
/// (U_i + 2 <= T_i, DESIGN.md §13) where the bound survives credit flow
/// control.  This monitor is the runtime half of that contract: callers
/// feed it observed latencies (the REPORT verb, or flitsim's exact
/// per-stream worst cases in tests and the fuzzer) together with the
/// stream's *current* analytic bound, and it keeps per-handle
/// observation records and a violation count.
///
/// Bounds are passed in per report rather than cached here: bounds move
/// whenever the admission engine recomputes a dirty closure, so a
/// cached copy would go stale — the caller (who holds the engine lock
/// anyway) always knows the current truth.
///
/// A violation — observed > bound on a flit-valid stream — increments
/// `wormrt_bound_violations_total{handle="H"}`; the labelled child is
/// registered lazily on the first violation so healthy populations do
/// not bloat the exposition.  Reports on streams *outside* the validity
/// domain (admitted under --no-credit-slack-guard) are recorded but
/// never counted as violations: the analysis makes no claim there
/// (EXPERIMENTS.md finding 2).
///
/// Thread safety: one internal mutex; every member is safe to call
/// concurrently.  The monitor never calls out while holding it.
namespace wormrt::obs {

class ConformanceMonitor {
 public:
  /// Counters are registered in \p registry, which must outlive the
  /// monitor.
  explicit ConformanceMonitor(Registry& registry);

  /// Per-stream observation record (a copy; see records()).
  struct Record {
    std::int64_t handle = -1;
    /// Bound / period / validity as of the most recent report.
    double bound = 0.0;
    double period = 0.0;
    bool flit_valid = false;
    double max_observed = 0.0;
    std::uint64_t reports = 0;
    std::uint64_t violations = 0;
  };

  /// Outcome of one report, echoed to the REPORT caller.
  struct Outcome {
    bool violation = false;
    double max_observed = 0.0;
    std::uint64_t violations = 0;
  };

  /// Records one observed end-to-end latency for \p handle against its
  /// current analytic \p bound and \p period.  \p flit_valid says the
  /// stream is inside the validity domain; only then can a violation be
  /// counted.  Unknown handles are tracked from their first report.
  Outcome report(std::int64_t handle, double observed, double bound,
                 double period, bool flit_valid);

  /// Drops the record of a torn-down stream (its violation counter, if
  /// any, stays in the registry — counters are cumulative).
  void untrack(std::int64_t handle);

  /// Keeps only the records whose handles \p live lists (ascending not
  /// required).  The service calls this at scrape time with the live
  /// population so records of removed/evicted streams do not accumulate.
  void retain(const std::vector<std::int64_t>& live);

  /// Snapshot of all records, ascending handle order.
  std::vector<Record> records() const;

  std::uint64_t total_violations() const {
    return violations_total_.value();
  }
  std::size_t size() const;

 private:
  Registry& registry_;
  /// Aggregate across all streams (wormrt_conformance_violations_total;
  /// HEALTH reads it).  The per-handle children live in the separate
  /// wormrt_bound_violations_total family so summing either is honest.
  Counter& violations_total_;
  mutable std::mutex mu_;
  std::map<std::int64_t, Record> records_;
};

}  // namespace wormrt::obs
