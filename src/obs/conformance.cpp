#include "obs/conformance.hpp"

#include <algorithm>
#include <string>

namespace wormrt::obs {

ConformanceMonitor::ConformanceMonitor(Registry& registry)
    : registry_(registry),
      violations_total_(registry.counter(
          "wormrt_conformance_violations_total", {},
          "Reported latencies exceeding the analytic bound on flit-valid "
          "streams, all streams.")) {}

ConformanceMonitor::Outcome ConformanceMonitor::report(std::int64_t handle,
                                                       double observed,
                                                       double bound,
                                                       double period,
                                                       bool flit_valid) {
  const bool violation = flit_valid && observed > bound;
  Outcome out;
  {
    std::lock_guard<std::mutex> lk(mu_);
    Record& rec = records_[handle];
    rec.handle = handle;
    rec.bound = bound;
    rec.period = period;
    rec.flit_valid = flit_valid;
    rec.max_observed = std::max(rec.max_observed, observed);
    ++rec.reports;
    if (violation) {
      ++rec.violations;
    }
    out.violation = violation;
    out.max_observed = rec.max_observed;
    out.violations = rec.violations;
  }
  if (violation) {
    // Outside mu_: the lazy registration walks the registry map.
    violations_total_.inc();
    registry_
        .counter("wormrt_bound_violations_total",
                 {{"handle", std::to_string(handle)}},
                 "Reported latencies exceeding the analytic bound, per "
                 "stream handle (children appear on first violation).")
        .inc();
  }
  return out;
}

void ConformanceMonitor::untrack(std::int64_t handle) {
  std::lock_guard<std::mutex> lk(mu_);
  records_.erase(handle);
}

void ConformanceMonitor::retain(const std::vector<std::int64_t>& live) {
  std::vector<std::int64_t> sorted = live;
  std::sort(sorted.begin(), sorted.end());
  std::lock_guard<std::mutex> lk(mu_);
  for (auto it = records_.begin(); it != records_.end();) {
    if (std::binary_search(sorted.begin(), sorted.end(), it->first)) {
      ++it;
    } else {
      it = records_.erase(it);
    }
  }
}

std::vector<ConformanceMonitor::Record> ConformanceMonitor::records() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<Record> out;
  out.reserve(records_.size());
  for (const auto& [handle, rec] : records_) {
    out.push_back(rec);
  }
  return out;
}

std::size_t ConformanceMonitor::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return records_.size();
}

}  // namespace wormrt::obs
