#include "obs/metrics.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <limits>

#include "util/log.hpp"

namespace wormrt::obs {

namespace {

/// Escapes a label value per the Prometheus text format: backslash,
/// double quote and newline.
std::string escape_label(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// Escapes a string for embedding in JSON output.
std::string escape_json(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Renders {k1="v1",k2="v2"}; empty string when there are no labels.
std::string render_labels(const Labels& labels) {
  if (labels.empty()) {
    return "";
  }
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) {
      out += ",";
    }
    out += labels[i].first + "=\"" + escape_label(labels[i].second) + "\"";
  }
  out += "}";
  return out;
}

/// Like render_labels but with one extra label appended (histogram le).
std::string render_labels_plus(const Labels& labels, const std::string& key,
                               const std::string& value) {
  Labels all = labels;
  all.emplace_back(key, value);
  return render_labels(all);
}

std::string format_double(double v) {
  if (v == std::numeric_limits<double>::infinity()) {
    return "+Inf";
  }
  char buf[64];
  // %.17g round-trips doubles; trim to %g-style readability for the
  // common integral values.
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::abs(v) < 1e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof buf, "%.17g", v);
  }
  return buf;
}

std::string key_of(const std::string& name, const Labels& labels) {
  std::string key = name;
  for (const auto& [k, v] : labels) {
    key += '\x1f';
    key += k;
    key += '\x1e';
    key += v;
  }
  return key;
}

}  // namespace

// ---------------------------------------------------------------------------
// Histogram

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), buckets_(buckets) {
  for (std::size_t i = 0; i < kShards; ++i) {
    shards_.emplace_back(lo, hi, buckets);
  }
}

void Histogram::observe(double x) {
  Shard& s = shards_[util::thread_index() % kShards];
  std::lock_guard<std::mutex> lk(s.mu);
  if (s.hist.total() == 0) {
    s.min = x;
    s.max = x;
  } else {
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  s.hist.add(x);
  s.sum += x;
}

util::Histogram Histogram::merged() const {
  util::Histogram out(lo_, hi_, buckets_);
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> lk(s.mu);
    out.merge(s.hist);
  }
  return out;
}

std::uint64_t Histogram::count() const {
  std::uint64_t n = 0;
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> lk(s.mu);
    n += s.hist.total();
  }
  return n;
}

double Histogram::sum() const {
  double total = 0.0;
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> lk(s.mu);
    total += s.sum;
  }
  return total;
}

double Histogram::min() const {
  double m = 0.0;
  bool seen = false;
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> lk(s.mu);
    if (s.hist.total() == 0) {
      continue;
    }
    m = seen ? std::min(m, s.min) : s.min;
    seen = true;
  }
  return m;
}

double Histogram::max() const {
  double m = 0.0;
  bool seen = false;
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> lk(s.mu);
    if (s.hist.total() == 0) {
      continue;
    }
    m = seen ? std::max(m, s.max) : s.max;
    seen = true;
  }
  return m;
}

double Histogram::quantile(double q) const { return merged().quantile(q); }

// ---------------------------------------------------------------------------
// Registry

Counter& Registry::counter(const std::string& name, const Labels& labels,
                           const std::string& help) {
  std::lock_guard<std::mutex> lk(mu_);
  const std::string key = key_of(name, labels);
  auto it = index_.find(key);
  if (it != index_.end()) {
    assert(entries_[it->second].kind == Kind::kCounter);
    return *entries_[it->second].counter;
  }
  counters_.emplace_back();
  Entry e;
  e.kind = Kind::kCounter;
  e.name = name;
  e.labels = labels;
  e.help = help;
  e.counter = &counters_.back();
  index_[key] = entries_.size();
  entries_.push_back(std::move(e));
  return counters_.back();
}

Gauge& Registry::gauge(const std::string& name, const Labels& labels,
                       const std::string& help) {
  std::lock_guard<std::mutex> lk(mu_);
  const std::string key = key_of(name, labels);
  auto it = index_.find(key);
  if (it != index_.end()) {
    assert(entries_[it->second].kind == Kind::kGauge);
    return *entries_[it->second].gauge;
  }
  gauges_.emplace_back();
  Entry e;
  e.kind = Kind::kGauge;
  e.name = name;
  e.labels = labels;
  e.help = help;
  e.gauge = &gauges_.back();
  index_[key] = entries_.size();
  entries_.push_back(std::move(e));
  return gauges_.back();
}

Histogram& Registry::histogram(const std::string& name, double lo, double hi,
                               std::size_t buckets, const Labels& labels,
                               const std::string& help) {
  std::lock_guard<std::mutex> lk(mu_);
  const std::string key = key_of(name, labels);
  auto it = index_.find(key);
  if (it != index_.end()) {
    Histogram* h = entries_[it->second].histogram;
    assert(entries_[it->second].kind == Kind::kHistogram);
    assert(h->lo() == lo && h->hi() == hi && h->buckets() == buckets);
    return *h;
  }
  histograms_.emplace_back(lo, hi, buckets);
  Entry e;
  e.kind = Kind::kHistogram;
  e.name = name;
  e.labels = labels;
  e.help = help;
  e.histogram = &histograms_.back();
  index_[key] = entries_.size();
  entries_.push_back(std::move(e));
  return histograms_.back();
}

std::string Registry::to_prometheus() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::string out;

  // One # HELP/# TYPE pair per family, children grouped beneath it.  A
  // family is every entry sharing a name; exposition preserves first-
  // registration order.
  std::vector<bool> emitted(entries_.size(), false);
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (emitted[i]) {
      continue;
    }
    const Entry& head = entries_[i];
    const char* type = head.kind == Kind::kCounter   ? "counter"
                       : head.kind == Kind::kGauge   ? "gauge"
                                                     : "histogram";
    if (!head.help.empty()) {
      out += "# HELP " + head.name + " " + head.help + "\n";
    }
    out += "# TYPE " + head.name + " " + type + "\n";
    for (std::size_t j = i; j < entries_.size(); ++j) {
      if (emitted[j] || entries_[j].name != head.name) {
        continue;
      }
      emitted[j] = true;
      const Entry& e = entries_[j];
      switch (e.kind) {
        case Kind::kCounter:
          out += e.name + render_labels(e.labels) + " " +
                 std::to_string(e.counter->value()) + "\n";
          break;
        case Kind::kGauge:
          out += e.name + render_labels(e.labels) + " " +
                 format_double(e.gauge->value()) + "\n";
          break;
        case Kind::kHistogram: {
          const Histogram& h = *e.histogram;
          const util::Histogram m = h.merged();
          std::uint64_t cum = m.underflow();
          for (std::size_t b = 0; b < m.bucket_count(); ++b) {
            cum += m.bucket(b);
            out += e.name + "_bucket" +
                   render_labels_plus(e.labels, "le",
                                      format_double(m.bucket_hi(b))) +
                   " " + std::to_string(cum) + "\n";
          }
          cum += m.overflow();
          out += e.name + "_bucket" +
                 render_labels_plus(e.labels, "le", "+Inf") + " " +
                 std::to_string(cum) + "\n";
          out += e.name + "_sum" + render_labels(e.labels) + " " +
                 format_double(h.sum()) + "\n";
          out += e.name + "_count" + render_labels(e.labels) + " " +
                 std::to_string(cum) + "\n";
          break;
        }
      }
    }
  }
  return out;
}

std::string Registry::to_json() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::string out = "{\"metrics\":[";
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    if (i > 0) {
      out += ",";
    }
    out += "{\"name\":\"" + escape_json(e.name) + "\",";
    out += "\"labels\":{";
    for (std::size_t j = 0; j < e.labels.size(); ++j) {
      if (j > 0) {
        out += ",";
      }
      out += "\"" + escape_json(e.labels[j].first) + "\":\"" +
             escape_json(e.labels[j].second) + "\"";
    }
    out += "},";
    switch (e.kind) {
      case Kind::kCounter:
        out += "\"type\":\"counter\",\"value\":" +
               std::to_string(e.counter->value());
        break;
      case Kind::kGauge:
        out += "\"type\":\"gauge\",\"value\":" +
               format_double(e.gauge->value());
        break;
      case Kind::kHistogram: {
        const Histogram& h = *e.histogram;
        const util::Histogram m = h.merged();
        out += "\"type\":\"histogram\"";
        out += ",\"count\":" + std::to_string(h.count());
        out += ",\"sum\":" + format_double(h.sum());
        out += ",\"min\":" + format_double(h.min());
        out += ",\"max\":" + format_double(h.max());
        out += ",\"p50\":" + format_double(m.quantile(0.50));
        out += ",\"p99\":" + format_double(m.quantile(0.99));
        break;
      }
    }
    out += "}";
  }
  out += "]}";
  return out;
}

Registry& Registry::global() {
  static Registry* reg = new Registry();  // leaked: outlives all users
  return *reg;
}

}  // namespace wormrt::obs
