#include "obs/trace.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <vector>

#include "util/log.hpp"

namespace wormrt::obs {

std::atomic<bool> Tracer::enabled_{false};

namespace {

struct Event {
  const char* name;
  std::int64_t ts_us;
  std::int64_t dur_us;
  unsigned tid;
};

/// One per recording thread; kept alive past thread exit by the
/// registry's shared_ptr so export_json can still read it.
struct ThreadBuffer {
  std::mutex mu;
  std::vector<Event> events;
};

struct BufferRegistry {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
};

BufferRegistry& registry() {
  static BufferRegistry* r = new BufferRegistry();  // leaked: outlives threads
  return *r;
}

ThreadBuffer& local_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> buf = [] {
    auto b = std::make_shared<ThreadBuffer>();
    BufferRegistry& r = registry();
    std::lock_guard<std::mutex> lk(r.mu);
    r.buffers.push_back(b);
    return b;
  }();
  return *buf;
}

/// Backstop against a forgotten enabled tracer filling memory; far above
/// anything a test or a daemon trace session produces.
constexpr std::size_t kMaxEventsPerThread = 1u << 20;

std::string escape(const char* s) {
  std::string out;
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out += '\\';
    }
    out += c;
  }
  return out;
}

}  // namespace

void Tracer::record_complete(const char* name, std::int64_t ts_us,
                             std::int64_t dur_us) {
  record_complete(name, ts_us, dur_us, util::thread_index());
}

void Tracer::record_complete(const char* name, std::int64_t ts_us,
                             std::int64_t dur_us, unsigned tid) {
  ThreadBuffer& buf = local_buffer();
  std::lock_guard<std::mutex> lk(buf.mu);
  if (buf.events.size() >= kMaxEventsPerThread) {
    return;
  }
  buf.events.push_back(Event{name, ts_us, dur_us, tid});
}

std::int64_t Tracer::now_us() {
  static const auto epoch = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch)
      .count();
}

std::string Tracer::export_json() {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  BufferRegistry& r = registry();
  std::lock_guard<std::mutex> rlk(r.mu);
  for (const auto& buf : r.buffers) {
    std::lock_guard<std::mutex> lk(buf->mu);
    for (const Event& e : buf->events) {
      if (!first) {
        out += ",";
      }
      first = false;
      out += "{\"name\":\"" + escape(e.name) +
             "\",\"cat\":\"wormrt\",\"ph\":\"X\",\"ts\":" +
             std::to_string(e.ts_us) + ",\"dur\":" + std::to_string(e.dur_us) +
             ",\"pid\":1,\"tid\":" + std::to_string(e.tid) + "}";
    }
  }
  out += "]}";
  return out;
}

bool Tracer::export_json_to_file(const std::string& path,
                                 std::string* error) {
  // tmp + fsync + rename: a crash or kill mid-write leaves either the
  // previous file or the complete new one, never a torn JSON.
  const std::string tmp = path + ".tmp";
  const std::string json = export_json();
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    if (error != nullptr) {
      *error = tmp + ": " + std::strerror(errno);
    }
    return false;
  }
  std::size_t off = 0;
  while (off < json.size()) {
    const ssize_t n = ::write(fd, json.data() + off, json.size() - off);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (error != nullptr) {
        *error = tmp + ": " + std::strerror(errno);
      }
      ::close(fd);
      ::unlink(tmp.c_str());
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0 || ::close(fd) != 0 ||
      ::rename(tmp.c_str(), path.c_str()) != 0) {
    if (error != nullptr) {
      *error = path + ": " + std::strerror(errno);
    }
    ::unlink(tmp.c_str());
    return false;
  }
  return true;
}

void Tracer::clear() {
  BufferRegistry& r = registry();
  std::lock_guard<std::mutex> rlk(r.mu);
  for (const auto& buf : r.buffers) {
    std::lock_guard<std::mutex> lk(buf->mu);
    buf->events.clear();
  }
}

std::size_t Tracer::event_count() {
  std::size_t n = 0;
  BufferRegistry& r = registry();
  std::lock_guard<std::mutex> rlk(r.mu);
  for (const auto& buf : r.buffers) {
    std::lock_guard<std::mutex> lk(buf->mu);
    n += buf->events.size();
  }
  return n;
}

}  // namespace wormrt::obs
