#pragma once

#include <atomic>
#include <cstdint>
#include <string>

/// \file trace.hpp
/// Scoped trace spans exportable as Chrome trace_event JSON.
///
/// Usage: drop `OBS_SPAN("cal_u")` at the top of a scope.  When tracing
/// is disabled (the default) the guard costs one relaxed atomic load and
/// a branch — cheap enough to leave in Cal_U's hot loop (<2% on the
/// BM_CalU / BM_AdmissionChurn benches, see BENCH_obs.json).  When
/// enabled, span completion appends one fixed-size event to a per-thread
/// buffer under an uncontended per-buffer mutex (the mutex exists so the
/// exporter can read buffers of live threads without racing — this keeps
/// TSan clean).
///
/// Export with Tracer::export_json(); the result loads directly into
/// chrome://tracing or https://ui.perfetto.dev.  Nesting is recovered by
/// the viewer from timestamps ("X" complete events on one tid stack by
/// containment), so spans need no explicit parent links.
///
/// Span names must be string literals (or otherwise outlive the
/// process): events store the `const char*` unformatted to keep the
/// enabled hot path allocation-free.

namespace wormrt::obs {

class SpanGuard;

class Tracer {
 public:
  /// Globally switches span recording on or off.  Spans already open
  /// when tracing flips on record normally at close; events recorded
  /// before a clear() are dropped.
  static void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  static bool enabled() { return enabled_.load(std::memory_order_relaxed); }

  /// Records one complete ("X") event.  \p name must outlive the
  /// process (string literal).  Timestamps are microseconds on the
  /// shared monotonic scale returned by now_us().
  static void record_complete(const char* name, std::int64_t ts_us,
                              std::int64_t dur_us);
  /// Same, with an explicit tid — the simulator uses virtual "tids" to
  /// lay packet lifetimes out per-stream instead of per-thread.
  static void record_complete(const char* name, std::int64_t ts_us,
                              std::int64_t dur_us, unsigned tid);

  /// Microseconds since the first call, monotonic, shared across
  /// threads.  The same scale `util::log_message` prints as [+mono].
  static std::int64_t now_us();

  /// Serialises all recorded events as Chrome trace_event JSON:
  /// {"displayTimeUnit":"ms","traceEvents":[{name,cat,ph,ts,dur,pid,tid}]}.
  static std::string export_json();

  /// export_json() written crash-tolerantly: tmp file, fsync, rename —
  /// readers never see a torn JSON even if the writer is killed
  /// mid-export.  False + \p error on I/O failure.
  static bool export_json_to_file(const std::string& path,
                                  std::string* error = nullptr);

  /// Drops all recorded events (buffers stay registered).
  static void clear();

  /// Number of events currently buffered across all threads.
  static std::size_t event_count();

 private:
  friend class SpanGuard;
  static std::atomic<bool> enabled_;
};

/// RAII guard: records a complete event covering its own lifetime.
/// The enabled check happens at construction; a span that starts
/// enabled records even if tracing is switched off before it closes
/// (the reverse — starting disabled — records nothing).
class SpanGuard {
 public:
  explicit SpanGuard(const char* name)
      : name_(Tracer::enabled() ? name : nullptr),
        start_us_(name_ != nullptr ? Tracer::now_us() : 0) {}
  ~SpanGuard() {
    if (name_ != nullptr) {
      Tracer::record_complete(name_, start_us_, Tracer::now_us() - start_us_);
    }
  }
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

 private:
  const char* name_;
  std::int64_t start_us_;
};

}  // namespace wormrt::obs

#define WORMRT_OBS_CONCAT2(a, b) a##b
#define WORMRT_OBS_CONCAT(a, b) WORMRT_OBS_CONCAT2(a, b)

/// Opens a span named \p name (a string literal) covering the enclosing
/// scope.  Compiles to nothing when WORMRT_OBS_DISABLE is defined.
#if defined(WORMRT_OBS_DISABLE)
#define OBS_SPAN(name) ((void)0)
#else
#define OBS_SPAN(name) \
  ::wormrt::obs::SpanGuard WORMRT_OBS_CONCAT(obs_span_, __LINE__)(name)
#endif
