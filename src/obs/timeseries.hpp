#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

/// \file timeseries.hpp
/// Bounded metric history: fixed-size rings of (t_ms, value) samples
/// plus a background sampler thread that fills them.
///
/// The metrics registry answers "how much ever" — the HISTORY verb and
/// wormrt-top need "how much lately".  Each TimeSeries is a ring of the
/// most recent `capacity` samples; the Sampler owns a set of series and
/// a probe function per series, and snapshots every probe at a fixed
/// interval on its own thread.
///
/// Probes run OUTSIDE any service lock — they must only touch
/// independently synchronised state (registry counters/gauges, sharded
/// histograms, the conformance monitor, ThreadPool stats).  A probe
/// that took the service mutex would make the sampler a tail-latency
/// source, which is exactly what it exists to watch.
///
/// Timestamps are milliseconds on the sampler's own monotonic scale
/// (ms since construction), so windows are immune to wall-clock steps.
namespace wormrt::obs {

/// Fixed-capacity ring of timestamped samples.  Thread-safe.
class TimeSeries {
 public:
  TimeSeries(std::string name, std::size_t capacity);

  struct Sample {
    std::int64_t t_ms = 0;
    double value = 0.0;
  };

  void append(std::int64_t t_ms, double value);

  /// Samples with t_ms >= \p since_ms, oldest first.
  std::vector<Sample> window(std::int64_t since_ms = 0) const;

  const std::string& name() const { return name_; }
  std::size_t capacity() const { return capacity_; }
  std::size_t size() const;

 private:
  const std::string name_;
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::vector<Sample> ring_;  // ring_[ (start_ + i) % capacity_ ]
  std::size_t start_ = 0;
  std::size_t size_ = 0;
};

/// Periodic snapshotter: one thread, many series.
class Sampler {
 public:
  using Probe = std::function<double()>;

  /// \p capacity is the ring size of every series added later.
  explicit Sampler(std::size_t capacity = 512);
  ~Sampler();

  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  /// Registers a series.  Only valid before start().
  void add_series(const std::string& name, Probe probe);

  /// Starts sampling every \p interval_ms milliseconds (>= 1).  One
  /// sample of every series is taken immediately so HISTORY is never
  /// empty after startup.  No-op if already running.
  void start(int interval_ms);

  /// Stops and joins the thread.  Idempotent; the rings keep their
  /// samples.
  void stop();

  /// Takes one sample of every series now (also what the thread does
  /// each tick).  Usable without start() — deterministic tests drive
  /// the sampler manually.
  void sample_once();

  bool running() const;
  int interval_ms() const { return interval_ms_; }

  /// Milliseconds since construction, the timestamp scale of every
  /// sample.
  std::int64_t now_ms() const;

  /// Stable pointers (deque-backed): valid for the sampler's lifetime.
  std::vector<const TimeSeries*> series() const;
  const TimeSeries* find(const std::string& name) const;

 private:
  void run();

  const std::size_t capacity_;
  const std::chrono::steady_clock::time_point epoch_;
  int interval_ms_ = 0;

  mutable std::mutex mu_;  // guards series_/probes_ shape + thread state
  std::condition_variable cv_;
  bool stop_requested_ = false;
  bool running_ = false;
  std::deque<TimeSeries> series_;
  std::vector<Probe> probes_;
  std::thread thread_;
};

}  // namespace wormrt::obs
