#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/histogram.hpp"

/// \file metrics.hpp
/// The process-wide metrics registry: named counters, gauges and
/// histograms with label support, exposed as Prometheus text and JSON.
///
/// Design constraints, in order:
///   1. Cheap hot path — Counter::inc / Gauge::set are one relaxed
///      atomic op; Histogram::observe takes one uncontended per-shard
///      mutex (shards are picked by thread index, so concurrent
///      observers rarely collide).  Look metrics up ONCE (registration
///      walks a map under the registry mutex) and cache the returned
///      reference; references stay valid for the registry's lifetime.
///   2. Exact totals — concurrent increments are never lost (property
///      tested with N threads hammering one counter/histogram).
///   3. Aggregation on read — per-shard util::Histograms are merged at
///      exposition time (Histogram::merge), and quantiles are estimated
///      from the merged buckets (Histogram::quantile), so the write
///      path never sorts or stores samples.
///
/// Naming follows the Prometheus conventions documented in DESIGN.md
/// §9: `wormrt_<subsystem>_<what>[_total]`, labels for dimensions that
/// fan out (verb, decision, invariant).

namespace wormrt::obs {

/// Label set of one metric child, e.g. {{"verb", "REQUEST"}}.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing counter.
class Counter {
 public:
  void inc(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  /// Mirrors an externally maintained cumulative count (e.g. the
  /// incremental engine's work counters) at scrape time.  The source
  /// must itself be monotonic or the exposition lies.
  void mirror(std::uint64_t absolute) {
    value_.store(absolute, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous value that can go up and down.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Sharded fixed-bucket histogram.  Each shard wraps a util::Histogram
/// plus sum/min/max; observe() touches only the calling thread's shard.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void observe(double x);

  /// Merged view of all shards (a copy; the shards keep accumulating).
  util::Histogram merged() const;
  std::uint64_t count() const;
  double sum() const;
  /// Smallest / largest observed value; 0 when empty.
  double min() const;
  double max() const;
  /// Estimated q-quantile (q in [0,1]) over the merged buckets.
  double quantile(double q) const;
  double p99() const { return quantile(0.99); }
  double p999() const { return quantile(0.999); }

  double lo() const { return lo_; }
  double hi() const { return hi_; }
  std::size_t buckets() const { return buckets_; }

 private:
  static constexpr std::size_t kShards = 8;
  struct Shard {
    explicit Shard(double lo, double hi, std::size_t buckets)
        : hist(lo, hi, buckets) {}
    mutable std::mutex mu;
    util::Histogram hist;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
  };

  double lo_;
  double hi_;
  std::size_t buckets_;
  std::deque<Shard> shards_;  // deque: Shard holds a mutex, never moves
};

/// Owner of all metrics.  Registration is idempotent: asking for the
/// same (name, labels) again returns the same instance, so call sites
/// do not need to coordinate.  Use Registry::global() for process-wide
/// metrics; services that must not share counters across instances
/// (e.g. two svc::Services in one test binary) own a private Registry.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(const std::string& name, const Labels& labels = {},
                   const std::string& help = "");
  Gauge& gauge(const std::string& name, const Labels& labels = {},
               const std::string& help = "");
  /// All children of one histogram family must agree on the bucket
  /// layout (asserted).
  Histogram& histogram(const std::string& name, double lo, double hi,
                       std::size_t buckets, const Labels& labels = {},
                       const std::string& help = "");

  /// Prometheus text exposition (version 0.0.4): one # HELP/# TYPE pair
  /// per family, histogram children as cumulative _bucket{le=...} series
  /// plus _sum and _count.
  std::string to_prometheus() const;

  /// JSON exposition: {"metrics":[{name,type,labels,...}]} with
  /// count/sum/min/max/quantiles/buckets for histograms.
  std::string to_json() const;

  static Registry& global();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::string name;
    Labels labels;
    std::string help;
    Counter* counter = nullptr;
    Gauge* gauge = nullptr;
    Histogram* histogram = nullptr;
  };

  mutable std::mutex mu_;
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
  std::vector<Entry> entries_;                 // exposition order
  std::map<std::string, std::size_t> index_;   // name+labels -> entry
};

}  // namespace wormrt::obs
