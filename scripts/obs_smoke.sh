#!/usr/bin/env bash
# Observability smoke test: boot a journaled wormrtd with the audit log
# and the history sampler on, drive real traffic, then prove the whole
# monitoring surface answers:
#
#   - `wormrt-cli health` exits 0 on a healthy daemon and the payload
#     says ok,
#   - `wormrt-top --once` renders a plain snapshot (exit 0),
#   - a REPORT above an admitted channel's bound flips health to
#     degraded with a machine-readable reason, and `wormrt-cli health`
#     exits 1,
#   - HISTORY returns sampled series covering the run,
#   - SIGTERM leaves a parseable JSONL audit log with one record per
#     mutation.
#
#   usage: scripts/obs_smoke.sh [build-dir] [out-dir]
#
# Artifacts (audit log, HISTORY dump, daemon logs) land in out-dir for
# CI upload.
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-obs-smoke-out}"

WORMRTD="$BUILD_DIR/src/svc/wormrtd"
CLI="$BUILD_DIR/src/svc/wormrt-cli"
TOP="$BUILD_DIR/tools/wormrt-top"
for bin in "$WORMRTD" "$CLI" "$TOP"; do
  if [[ ! -x "$bin" ]]; then
    echo "error: $bin not built (cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j)" >&2
    exit 1
  fi
done

mkdir -p "$OUT_DIR"
WORK="$(mktemp -d /tmp/wormrt-obs-smoke.XXXXXX)"
SOCKET="$WORK/wormrtd.sock"
AUDIT="$OUT_DIR/audit.jsonl"
rm -f "$AUDIT" "$AUDIT.1"
DAEMON_PID=""

cleanup() {
  if [[ -n "$DAEMON_PID" ]] && kill -0 "$DAEMON_PID" 2>/dev/null; then
    kill -9 "$DAEMON_PID" 2>/dev/null || true
    wait "$DAEMON_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

"$WORMRTD" --socket "$SOCKET" --mesh 8 --threads 1 \
  --state-dir "$WORK/state" \
  --sample-interval-ms 50 \
  --audit-log "$AUDIT" \
  >"$OUT_DIR/daemon.out" 2>"$OUT_DIR/daemon.err" &
DAEMON_PID=$!
for _ in $(seq 1 200); do
  grep -q '^READY' "$OUT_DIR/daemon.out" 2>/dev/null && break
  if ! kill -0 "$DAEMON_PID" 2>/dev/null; then
    echo "error: daemon died during startup" >&2
    cat "$OUT_DIR/daemon.err" >&2
    exit 1
  fi
  sleep 0.05
done

cli() {
  "$CLI" --socket "$SOCKET" --timeout-ms 5000 "$@"
}

# Traffic: a dozen admissions (some will be removed), so the metrics,
# audit log, and history sampler all have something to show.
mutations=0
handles=()
for i in $(seq 1 12); do
  src=$(( (i * 7) % 64 ))
  dst=$(( (i * 13 + 5) % 64 ))
  [[ "$src" -eq "$dst" ]] && dst=$(( (dst + 1) % 64 ))
  reply="$(cli request --src "$src" --dst "$dst" \
    --priority $(( i % 4 + 1 )) --period $(( 600 + i * 20 )) \
    --length $(( 8 + i % 16 )) --deadline $(( 580 + i * 20 )) || true)"
  mutations=$((mutations + 1))
  handle="$(printf '%s' "$reply" | sed -n 's/.*"handle":\([0-9]*\).*/\1/p')"
  [[ -n "$handle" ]] && handles+=("$handle")
done
if [[ "${#handles[@]}" -lt 2 ]]; then
  echo "FAIL: expected at least 2 admissions, got ${#handles[@]}" >&2
  exit 1
fi
cli remove --handle "${handles[0]}" >/dev/null
mutations=$((mutations + 1))

# 1. Healthy daemon: health exits 0 and says ok.
health="$(cli health)"
echo "health (ok): $health"
printf '%s' "$health" | grep -q '"status":"ok"'

# 2. wormrt-top --once renders a plain snapshot.
"$TOP" --socket "$SOCKET" --once | tee "$OUT_DIR/wormrt-top.txt"
grep -q 'wormrt-top' "$OUT_DIR/wormrt-top.txt"
grep -q 'population' "$OUT_DIR/wormrt-top.txt"

# 3. Conforming REPORTs keep health ok; one observation above the
#    bound flips it to degraded and the cli exit code mirrors that.
cli report --handle "${handles[1]}" --latency 1 >/dev/null
health="$(cli health)"
printf '%s' "$health" | grep -q '"status":"ok"'
cli report --handle "${handles[1]}" --latency 900000 >/dev/null
set +e
cli health >"$OUT_DIR/health-degraded.json"
rc=$?
set -e
if [[ "$rc" -ne 1 ]]; then
  echo "FAIL: wormrt-cli health expected exit 1 (degraded), got $rc" >&2
  cat "$OUT_DIR/health-degraded.json" >&2
  exit 1
fi
grep -q '"status":"degraded"' "$OUT_DIR/health-degraded.json"
grep -q 'bound_violations' "$OUT_DIR/health-degraded.json"
echo "health (degraded): exit 1, reason recorded"

# 4. HISTORY has sampled series by now (50ms period).
sleep 0.3
cli history --window-ms 60000 >"$OUT_DIR/history.json"
python3 - "$OUT_DIR/history.json" <<'PY'
import json, sys
d = json.load(open(sys.argv[1]))
series = {s["name"]: s["samples"] for s in d["series"]}
assert d["ok"] and d["interval_ms"] == 50, d
assert series, "no series sampled"
pop = series["population"]
assert pop and pop[-1][1] > 0, pop
print("history: %d series, %d population samples, last=%d"
      % (len(series), len(pop), pop[-1][1]))
PY

# 5. wormrt-top --once again, now showing violations + history.
"$TOP" --socket "$SOCKET" --once >"$OUT_DIR/wormrt-top-degraded.txt"
grep -q 'health: degraded' "$OUT_DIR/wormrt-top-degraded.txt"
grep -q 'bound_violations' "$OUT_DIR/wormrt-top-degraded.txt"

# 6. SIGTERM: audit log must be flushed, parseable, and complete.
kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=""
python3 - "$AUDIT" "$mutations" <<'PY'
import json, sys
records = [json.loads(l) for l in open(sys.argv[1]) if l.strip()]
want = int(sys.argv[2])
assert len(records) == want, (len(records), want)
seqs = [r["seq"] for r in records]
assert seqs == list(range(want)), "audit seq not dense"
kinds = {r["event"] for r in records}
assert "request" in kinds and "remove" in kinds, kinds
admitted = [r for r in records if r["event"] == "request" and r["admitted"]]
assert all("handle" in r and "bound" in r and r.get("durable") for r in admitted)
print("audit: %d records, seq dense, events %s" % (len(records), sorted(kinds)))
PY

echo "PASS: health/top/report/history/audit all answered"
