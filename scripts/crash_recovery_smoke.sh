#!/usr/bin/env bash
# Crash-recovery smoke test: SIGKILL wormrtd mid-service N times and
# prove the journal brings back exactly the acknowledged state.
#
#   usage: scripts/crash_recovery_smoke.sh [build-dir] [cycles]
#
# Each cycle admits a few channels (and removes one), records the
# snapshot the daemon acknowledged, kills the daemon with SIGKILL —
# no shutdown handler, no flush, the worst case — restarts it on the
# same --state-dir, and compares the recovered snapshot byte for byte.
# A small --compact-every forces snapshot compaction to happen *during*
# the churn, so restarts also exercise snapshot + journal stitching and
# the stale-socket reclamation path.  Exits nonzero on any divergence;
# the state dir is left behind on failure for artifact upload.
set -euo pipefail

BUILD_DIR="${1:-build}"
CYCLES="${2:-10}"

WORMRTD="$BUILD_DIR/src/svc/wormrtd"
CLI="$BUILD_DIR/src/svc/wormrt-cli"
for bin in "$WORMRTD" "$CLI"; do
  if [[ ! -x "$bin" ]]; then
    echo "error: $bin not built (cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j)" >&2
    exit 1
  fi
done

WORK="$(mktemp -d /tmp/wormrt-crash-smoke.XXXXXX)"
STATE_DIR="$WORK/state"
SOCKET="$WORK/wormrtd.sock"
mkdir -p "$STATE_DIR"
DAEMON_PID=""

cleanup() {
  if [[ -n "$DAEMON_PID" ]] && kill -0 "$DAEMON_PID" 2>/dev/null; then
    kill -9 "$DAEMON_PID" 2>/dev/null || true
    wait "$DAEMON_PID" 2>/dev/null || true
  fi
}
trap cleanup EXIT

start_daemon() {
  "$WORMRTD" --socket "$SOCKET" --mesh 8 --threads 1 \
    --state-dir "$STATE_DIR" --compact-every 8 \
    >"$WORK/daemon.out" 2>>"$WORK/daemon.err" &
  DAEMON_PID=$!
  # Wait for the READY line (the socket exists and answers after it).
  for _ in $(seq 1 200); do
    if grep -q '^READY' "$WORK/daemon.out" 2>/dev/null; then
      return 0
    fi
    if ! kill -0 "$DAEMON_PID" 2>/dev/null; then
      echo "error: daemon died during startup" >&2
      cat "$WORK/daemon.err" >&2
      return 1
    fi
    sleep 0.05
  done
  echo "error: daemon never printed READY" >&2
  return 1
}

cli() {
  "$CLI" --socket "$SOCKET" --timeout-ms 5000 "$@"
}

start_daemon
echo "state dir: $STATE_DIR"

seq_no=0
for cycle in $(seq 1 "$CYCLES"); do
  # Churn: three admissions spread across the mesh plus one removal.
  # Rejections are fine (the mesh fills up) — what matters is that
  # whatever the daemon *acknowledged* survives the kill.
  for _ in 1 2 3; do
    seq_no=$((seq_no + 1))
    src=$(( (seq_no * 7) % 64 ))
    dst=$(( (seq_no * 13 + 5) % 64 ))
    if [[ "$src" -eq "$dst" ]]; then dst=$(( (dst + 1) % 64 )); fi
    reply="$(cli request --src "$src" --dst "$dst" \
      --priority $(( seq_no % 4 + 1 )) --period $(( 400 + seq_no * 10 )) \
      --length $(( 8 + seq_no % 16 )) --deadline $(( 380 + seq_no * 10 )) \
      || true)"
    handle="$(printf '%s' "$reply" | sed -n 's/.*"handle":\([0-9]*\).*/\1/p')"
    if [[ -n "$handle" && $(( seq_no % 5 )) -eq 0 ]]; then
      cli remove --handle "$handle" >/dev/null
    fi
  done

  before="$(cli snapshot)"

  kill -9 "$DAEMON_PID"
  wait "$DAEMON_PID" 2>/dev/null || true
  DAEMON_PID=""

  start_daemon
  after="$(cli snapshot)"

  if [[ "$before" != "$after" ]]; then
    echo "FAIL cycle $cycle: recovered snapshot differs" >&2
    echo "--- acknowledged before SIGKILL:" >&2
    echo "$before" >&2
    echo "--- recovered after restart:" >&2
    echo "$after" >&2
    echo "state dir preserved at $STATE_DIR" >&2
    exit 1
  fi
  recovery="$(grep -o 'recovered .*' "$WORK/daemon.err" | tail -1)"
  echo "cycle $cycle ok: $recovery"
done

cli shutdown >/dev/null || true
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=""

echo "PASS: $CYCLES SIGKILL/recover cycles, state identical every time"
rm -rf "$WORK"
