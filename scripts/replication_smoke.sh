#!/usr/bin/env bash
# Replication smoke test: a primary/follower wormrtd pair survives
# kill-the-primary failover with a provably identical decision history.
#
#   usage: scripts/replication_smoke.sh [build-dir] [out-dir]
#
# The script boots a journaled primary with --sync-replication and a
# follower with --follow, churns admissions/removals (plus a link
# down/up cycle) against the primary, asserts the follower refuses
# mutations and that wormrt-top --once shows both replication roles,
# then SIGKILLs the primary mid-life, promotes the follower via
# wormrt-cli, and requires:
#
#   - every decision the primary acked is in the survivor (audit-log
#     diff: the primary's (lsn, event, handle) history must equal the
#     follower's replicated_* history record for record),
#   - the promoted follower answers QUERY for the last acked handle and
#     accepts new mutations,
#   - wormrt-top --once on the survivor shows role primary and a bumped
#     epoch.
#
# Artifacts (both audit logs, their normalized diffs, daemon logs, top
# snapshots) land in out-dir for CI upload on failure.
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-replication-smoke-out}"

WORMRTD="$BUILD_DIR/src/svc/wormrtd"
CLI="$BUILD_DIR/src/svc/wormrt-cli"
TOP="$BUILD_DIR/tools/wormrt-top"
for bin in "$WORMRTD" "$CLI" "$TOP"; do
  if [[ ! -x "$bin" ]]; then
    echo "error: $bin not built (cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j)" >&2
    exit 1
  fi
done

mkdir -p "$OUT_DIR"
WORK="$(mktemp -d /tmp/wormrt-repl-smoke.XXXXXX)"
P_SOCKET="$WORK/primary.sock"
F_SOCKET="$WORK/follower.sock"
P_STATE="$WORK/primary-state"
F_STATE="$WORK/follower-state"
P_AUDIT="$OUT_DIR/primary-audit.jsonl"
F_AUDIT="$OUT_DIR/follower-audit.jsonl"
rm -f "$P_AUDIT" "$F_AUDIT"
mkdir -p "$P_STATE" "$F_STATE"
P_PID=""
F_PID=""

cleanup() {
  for pid in "$P_PID" "$F_PID"; do
    if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
      kill -9 "$pid" 2>/dev/null || true
      wait "$pid" 2>/dev/null || true
    fi
  done
}
trap cleanup EXIT

wait_ready() { # pid out-file name
  for _ in $(seq 1 200); do
    if grep -q '^READY' "$2" 2>/dev/null; then
      return 0
    fi
    if ! kill -0 "$1" 2>/dev/null; then
      echo "error: $3 died during startup" >&2
      cat "$2.err" >&2 || true
      return 1
    fi
    sleep 0.05
  done
  echo "error: $3 never printed READY" >&2
  return 1
}

"$WORMRTD" --socket "$P_SOCKET" --mesh 8 --threads 1 \
  --state-dir "$P_STATE" --compact-every 64 --sync-replication \
  --audit-log "$P_AUDIT" \
  >"$WORK/primary.out" 2>"$WORK/primary.out.err" &
P_PID=$!
wait_ready "$P_PID" "$WORK/primary.out" primary

"$WORMRTD" --socket "$F_SOCKET" --mesh 8 --threads 1 \
  --state-dir "$F_STATE" --follow "unix:$P_SOCKET" --follower-id smoke \
  --audit-log "$F_AUDIT" \
  >"$WORK/follower.out" 2>"$WORK/follower.out.err" &
F_PID=$!
wait_ready "$F_PID" "$WORK/follower.out" follower

pcli() { "$CLI" --socket "$P_SOCKET" --timeout-ms 5000 "$@"; }
fcli() { "$CLI" --socket "$F_SOCKET" --timeout-ms 5000 "$@"; }

# --- churn -----------------------------------------------------------
last_handle=""
for i in $(seq 1 30); do
  src=$(( (i * 7) % 64 ))
  dst=$(( (i * 13 + 5) % 64 ))
  if [[ "$src" -eq "$dst" ]]; then dst=$(( (dst + 1) % 64 )); fi
  reply="$(pcli request --src "$src" --dst "$dst" \
    --priority $(( i % 4 + 1 )) --period $(( 400 + i * 10 )) \
    --length $(( 4 + i % 12 )) --deadline $(( 380 + i * 20 )) || true)"
  handle="$(printf '%s' "$reply" | sed -n 's/.*"handle":\([0-9]*\).*/\1/p')"
  if [[ -n "$handle" ]]; then
    last_handle="$handle"
    if [[ $(( i % 6 )) -eq 0 ]]; then
      pcli remove --handle "$handle" >/dev/null
      last_handle=""
    fi
  fi
done
# A guaranteed keeper: the failover check below needs one acked channel
# that was never removed (the loop's final iteration may remove its own).
reply="$(pcli request --src 3 --dst 42 --priority 1 --period 900 \
  --length 4 --deadline 2000)"
last_handle="$(printf '%s' "$reply" | sed -n 's/.*"handle":\([0-9]*\).*/\1/p')"
if [[ -z "$last_handle" ]]; then
  echo "FAIL: keeper request was not admitted: $reply" >&2
  exit 1
fi
# One topology mutation cycle rides along: link records replicate too.
pcli link-down --src 1 --dst 2 >/dev/null
pcli link-up --src 1 --dst 2 >/dev/null

# --- follower is read-only and both roles are visible in wormrt-top --
if fcli request --src 0 --dst 9 --priority 2 --period 500 --length 4 \
    --deadline 1000 >"$WORK/refused.json" 2>&1; then
  echo "FAIL: follower accepted a mutation" >&2
  exit 1
fi
grep -q 'not primary' "$WORK/refused.json" || {
  echo "FAIL: follower refusal did not say 'not primary'" >&2
  cat "$WORK/refused.json" >&2
  exit 1
}

"$TOP" --socket "$P_SOCKET" --once >"$OUT_DIR/top-primary.txt"
grep -q 'role primary' "$OUT_DIR/top-primary.txt" || {
  echo "FAIL: wormrt-top on the primary does not show role primary" >&2
  cat "$OUT_DIR/top-primary.txt" >&2
  exit 1
}
grep -q 'followers 1' "$OUT_DIR/top-primary.txt" || {
  echo "FAIL: wormrt-top on the primary does not count its follower" >&2
  cat "$OUT_DIR/top-primary.txt" >&2
  exit 1
}
"$TOP" --socket "$F_SOCKET" --once >"$OUT_DIR/top-follower.txt"
grep -q 'role follower' "$OUT_DIR/top-follower.txt" || {
  echo "FAIL: wormrt-top on the follower does not show role follower" >&2
  cat "$OUT_DIR/top-follower.txt" >&2
  exit 1
}

# --- kill the primary, promote the survivor --------------------------
kill -9 "$P_PID"
wait "$P_PID" 2>/dev/null || true
P_PID=""

fcli promote >"$WORK/promote.json"
grep -q '"promoted":true' "$WORK/promote.json" || {
  echo "FAIL: promote did not report promoted:true" >&2
  cat "$WORK/promote.json" >&2
  exit 1
}

# Every acked decision survived: the last acked handle answers.
fcli query --handle "$last_handle" >/dev/null || {
  echo "FAIL: acked handle $last_handle lost in failover" >&2
  exit 1
}
# The survivor is writable.
fcli request --src 2 --dst 11 --priority 2 --period 500 --length 4 \
  --deadline 1000 >/dev/null

"$TOP" --socket "$F_SOCKET" --once >"$OUT_DIR/top-promoted.txt"
grep -q 'role primary' "$OUT_DIR/top-promoted.txt" || {
  echo "FAIL: promoted follower still renders as a follower" >&2
  cat "$OUT_DIR/top-promoted.txt" >&2
  exit 1
}
grep -q 'epoch 2' "$OUT_DIR/top-promoted.txt" || {
  echo "FAIL: promotion did not bump the fencing epoch" >&2
  cat "$OUT_DIR/top-promoted.txt" >&2
  exit 1
}

# --- decision-history equality via audit-log diff --------------------
# SIGTERM the survivor so its audit log is flushed and complete, then
# normalize both logs to (lsn, add|remove|link_down|link_up, key) and
# require the follower's replicated history to equal the primary's
# acked history record for record.  --sync-replication is what makes
# this an equality rather than a prefix check: nothing was acked that
# the follower doesn't have.
kill "$F_PID"
wait "$F_PID" 2>/dev/null || true
F_PID=""

normalize() { # file local|replicated
  python3 - "$@" <<'EOF'
import json, sys
path, mode = sys.argv[1], sys.argv[2]
rows = []
for line in open(path):
    line = line.strip()
    if not line:
        continue
    rec = json.loads(line)
    event = rec.get("event")
    if mode == "local":
        if event == "request" and rec.get("admitted") and "lsn" in rec:
            rows.append((rec["lsn"], "add", rec["handle"]))
        elif event == "remove" and "lsn" in rec:
            rows.append((rec["lsn"], "remove", rec["handle"]))
        elif event in ("link_down", "link_up") and "lsn" in rec:
            rows.append((rec["lsn"], event, f'{rec["src"]}->{rec["dst"]}'))
    else:
        if event == "replicated_add":
            rows.append((rec["lsn"], "add", rec["handle"]))
        elif event == "replicated_remove":
            rows.append((rec["lsn"], "remove", rec["handle"]))
        elif event in ("replicated_link_down", "replicated_link_up"):
            rows.append((rec["lsn"], event.replace("replicated_", ""),
                         f'{rec["src"]}->{rec["dst"]}'))
for lsn, event, key in sorted(rows):
    print(lsn, event, key)
EOF
}

normalize "$P_AUDIT" local >"$OUT_DIR/primary-history.txt"
normalize "$F_AUDIT" replicated >"$OUT_DIR/follower-history.txt"
if ! diff -u "$OUT_DIR/primary-history.txt" "$OUT_DIR/follower-history.txt" \
    >"$OUT_DIR/history.diff"; then
  echo "FAIL: primary and follower decision histories diverge" >&2
  cat "$OUT_DIR/history.diff" >&2
  exit 1
fi
records="$(wc -l <"$OUT_DIR/primary-history.txt")"
if [[ "$records" -lt 10 ]]; then
  echo "FAIL: only $records decisions in the history — churn too thin" >&2
  exit 1
fi

cp "$WORK"/*.out "$WORK"/*.out.err "$OUT_DIR"/ 2>/dev/null || true
echo "PASS: $records decisions, identical on both sides across a SIGKILL failover"
rm -rf "$WORK"
