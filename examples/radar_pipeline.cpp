// Domain scenario: a phased-array radar processing pipeline mapped onto
// a 4x4 multicomputer — the kind of hard-real-time workload the paper's
// introduction motivates.  Four antenna front-ends stream pulse data to
// beamformers, beamformers feed a tracker, the tracker reports to a
// display and issues steering commands back to the front-ends.  Every
// flow has a deadline; the host-processor feasibility test accepts or
// rejects the mapping, and a simulation confirms the accepted bounds.
//
//   ./examples/radar_pipeline [--tighten N]
//
// --tighten N scales all periods down by N percent to find the point
// where the mapping stops being schedulable.

#include <cstdio>

#include "core/feasibility.hpp"
#include "core/message_stream.hpp"
#include "route/dor.hpp"
#include "sim/simulator.hpp"
#include "topo/mesh.hpp"
#include "util/cli.hpp"

using namespace wormrt;

namespace {

struct Flow {
  const char* name;
  std::int32_t sx, sy, dx, dy;
  Priority priority;
  Time period, length, deadline;
};

// Node map (4x4): column 0 = antenna front-ends, column 1 = beamformers,
// (2,1) = tracker, (3,0) = display, (3,3) = recorder.
constexpr Flow kFlows[] = {
    // Steering commands: small, urgent, highest priority.
    {"steer->fe0", 2, 1, 0, 0, 5, 200, 4, 40},
    {"steer->fe1", 2, 1, 0, 1, 5, 200, 4, 40},
    {"steer->fe2", 2, 1, 0, 2, 5, 200, 4, 40},
    {"steer->fe3", 2, 1, 0, 3, 5, 200, 4, 40},
    // Pulse data: antenna -> beamformer, tight periodic flows.
    {"pulse0", 0, 0, 1, 0, 4, 100, 20, 100},
    {"pulse1", 0, 1, 1, 1, 4, 100, 20, 100},
    {"pulse2", 0, 2, 1, 2, 4, 100, 20, 100},
    {"pulse3", 0, 3, 1, 3, 4, 100, 20, 100},
    // Beams: beamformer -> tracker.
    {"beam0", 1, 0, 2, 1, 3, 100, 16, 120},
    {"beam1", 1, 1, 2, 1, 3, 100, 16, 120},
    {"beam2", 1, 2, 2, 1, 3, 100, 16, 120},
    {"beam3", 1, 3, 2, 1, 3, 100, 16, 120},
    // Track reports: tracker -> display.
    {"tracks", 2, 1, 3, 0, 2, 250, 30, 250},
    // Bulk recording: lowest priority, soft deadline.
    {"record", 2, 1, 3, 3, 1, 400, 60, 2000},
};

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const auto tighten = args.get_int("tighten", 0);  // percent

  topo::Mesh mesh(4, 4);
  const route::XYRouting xy;
  core::StreamSet streams;
  StreamId id = 0;
  for (const Flow& f : kFlows) {
    const Time period = f.period * (100 - tighten) / 100;
    const Time deadline = f.deadline * (100 - tighten) / 100;
    streams.add(core::make_stream(mesh, xy, id++, mesh.node_at({f.sx, f.sy}),
                                  mesh.node_at({f.dx, f.dy}), f.priority,
                                  period, f.length, deadline));
  }

  std::printf("Radar pipeline on a %s (%d flows%s)\n\n",
              mesh.name().c_str(), static_cast<int>(streams.size()),
              tighten ? ", periods tightened" : "");

  const core::FeasibilityReport report =
      core::determine_feasibility(streams);
  std::printf("%-12s %-9s %-7s %-7s %-9s %s\n", "flow", "priority",
              "deadline", "bound U", "verdict", "HP (direct+indirect)");
  for (const auto& r : report.streams) {
    const auto& s = streams[r.id];
    std::printf("%-12s %-9d %-7lld %-7lld %-9s %d+%d\n",
                kFlows[r.id].name, s.priority,
                static_cast<long long>(s.deadline),
                static_cast<long long>(r.bound),
                r.ok ? "ok" : "MISS", r.hp_direct, r.hp_indirect);
  }
  std::printf("\nMapping is %s.\n",
              report.feasible ? "SCHEDULABLE" : "NOT schedulable");

  if (report.feasible) {
    sim::SimConfig cfg;
    cfg.duration = 50000;
    cfg.warmup = 1000;
    cfg.policy = sim::ArbPolicy::kPriorityPreemptive;
    cfg.num_vcs = 6;
    sim::Simulator simulator(mesh, streams, cfg);
    const sim::SimResult result = simulator.run();
    std::printf("\nSimulation check (50000 flit times):\n");
    bool all_met = true;
    for (const auto& s : streams) {
      const auto& st = result.per_stream[static_cast<std::size_t>(s.id)];
      const bool met = st.latency.max() <= static_cast<double>(s.deadline);
      all_met = all_met && met;
      std::printf("  %-12s worst delay %5.0f vs deadline %lld %s\n",
                  kFlows[s.id].name, st.latency.max(),
                  static_cast<long long>(s.deadline),
                  met ? "" : "  <-- MISSED");
    }
    std::printf("%s\n", all_met ? "All deadlines met in simulation."
                                : "Deadline misses observed!");
    return all_met ? 0 : 1;
  }
  return 1;
}
