// Workload explorer: generate (or load) a stream set, run the full
// host-processor analysis, simulate it, and print an engineer-facing
// report — per-stream bounds vs observations, and the hottest channels
// of the mesh (where to re-map jobs if the margins look thin).
//
//   ./examples/workload_explorer [--streams N] [--levels K] [--seed S]
//                                [--load file.csv] [--save file.csv]

#include <cstdio>

#include "core/delay_bound.hpp"
#include "core/stream_io.hpp"
#include "core/workload.hpp"
#include "route/dor.hpp"
#include "sim/simulator.hpp"
#include "topo/mesh.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace wormrt;

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const topo::Mesh mesh(10, 10);
  const route::XYRouting xy;

  core::StreamSet streams;
  if (args.has("load")) {
    const auto loaded =
        core::load_streams(args.get_string("load", ""), mesh, xy);
    if (!loaded.ok()) {
      std::fprintf(stderr, "error loading workload: %s\n",
                   loaded.error.c_str());
      return 1;
    }
    streams = loaded.streams;
  } else {
    core::WorkloadParams wp;
    wp.num_streams = static_cast<int>(args.get_int("streams", 20));
    wp.priority_levels = static_cast<int>(args.get_int("levels", 5));
    wp.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    streams = generate_workload(mesh, xy, wp);
    core::adjust_periods_to_bounds(streams);
  }
  if (args.has("save")) {
    if (!core::save_streams(args.get_string("save", ""), streams)) {
      std::fprintf(stderr, "error saving workload\n");
      return 1;
    }
    std::printf("saved %zu streams to %s\n", streams.size(),
                args.get_string("save", "").c_str());
  }

  // Analysis.
  const core::BlockingAnalysis blocking(streams);
  core::AnalysisConfig acfg;
  acfg.horizon = core::HorizonPolicy::kExtended;
  const core::DelayBoundCalculator calc(streams, blocking, acfg);

  // Simulation.
  sim::SimConfig scfg;
  scfg.num_vcs = streams.max_priority() + 1;
  sim::Simulator sim(mesh, streams, scfg);
  const sim::SimResult result = sim.run();

  util::Table table({"stream", "P", "T", "C", "U", "avg delay",
                     "max delay", "margin"});
  for (const auto& s : streams) {
    const Time bound = calc.calc(s.id).bound;
    const auto& st = result.per_stream[static_cast<std::size_t>(s.id)];
    table.row()
        .cell(static_cast<std::int64_t>(s.id))
        .cell(static_cast<std::int64_t>(s.priority))
        .cell(s.period)
        .cell(s.length)
        .cell(bound == kNoTime ? std::string("-")
                               : std::to_string(bound))
        .cell(st.completed ? st.latency.mean() : 0.0, 1)
        .cell(st.completed ? st.latency.max() : 0.0, 0)
        .cell(bound == kNoTime || st.completed == 0
                  ? std::string("-")
                  : util::format_double(
                        1.0 - st.latency.max() / static_cast<double>(bound),
                        2));
  }
  std::fputs(table.to_ascii().c_str(), stdout);

  std::printf("\nHottest channels (%lld cycles):\n",
              static_cast<long long>(result.cycles_run));
  std::fputs(
      sim::render_hot_channels(
          result,
          [&](std::size_t c) {
            const auto& ch =
                mesh.channels().channel(static_cast<topo::ChannelId>(c));
            return std::pair<std::string, std::string>(
                topo::to_string(mesh.coord_of(ch.src)),
                topo::to_string(mesh.coord_of(ch.dst)));
          },
          8)
          .c_str(),
      stdout);
  return 0;
}
