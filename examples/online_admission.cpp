// Online real-time channel establishment: a control system brings
// channels up and down at runtime; each request is admitted only when
// its deadline can be guaranteed without invalidating any established
// channel (the related work's "real-time channel" procedure, realised
// over the paper's wormhole delay bound).
//
//   ./examples/online_admission

#include <cstdio>

#include "core/admission.hpp"
#include "route/dor.hpp"
#include "topo/mesh.hpp"

using namespace wormrt;

namespace {

struct Request {
  const char* name;
  std::int32_t sx, sy, dx, dy;
  Priority priority;
  Time period, length, deadline;
};

}  // namespace

int main() {
  topo::Mesh mesh(6, 6);
  const route::XYRouting xy;
  core::AdmissionController ctrl(mesh, xy);

  const Request requests[] = {
      {"telemetry-a", 0, 0, 5, 0, 1, 50, 20, 250},
      {"telemetry-b", 0, 1, 5, 1, 1, 50, 20, 250},
      {"control-1", 2, 2, 2, 5, 3, 40, 6, 40},
      {"control-2", 3, 5, 3, 2, 3, 40, 6, 40},
      {"video", 0, 2, 5, 2, 2, 30, 25, 90},
      // 96% of row 0 at a priority above telemetry-a: must be refused.
      {"video-extra", 1, 0, 4, 0, 2, 25, 24, 60},
      {"alarm", 4, 4, 0, 4, 4, 100, 4, 30},
  };

  std::printf("Online channel establishment on a %s\n\n",
              mesh.name().c_str());
  std::vector<std::pair<const char*, core::AdmissionController::Handle>>
      established;
  for (const Request& r : requests) {
    const auto d = ctrl.request(mesh.node_at({r.sx, r.sy}),
                                mesh.node_at({r.dx, r.dy}), r.priority,
                                r.period, r.length, r.deadline);
    if (d.admitted) {
      std::printf("  ADMIT  %-12s bound %lld <= deadline %lld\n", r.name,
                  static_cast<long long>(d.bound),
                  static_cast<long long>(r.deadline));
      established.emplace_back(r.name, d.handle);
    } else if (!d.would_break.empty()) {
      std::printf("  REJECT %-12s would break %zu established "
                  "channel(s)\n",
                  r.name, d.would_break.size());
    } else {
      std::printf("  REJECT %-12s own bound %lld misses deadline %lld\n",
                  r.name, static_cast<long long>(d.bound),
                  static_cast<long long>(r.deadline));
    }
  }

  // Tear one bulk channel down and retry the rejected request.
  std::printf("\nTearing down telemetry-a and retrying video-extra:\n");
  ctrl.remove(established.front().second);
  const Request& retry = requests[5];
  const auto d = ctrl.request(mesh.node_at({retry.sx, retry.sy}),
                              mesh.node_at({retry.dx, retry.dy}),
                              retry.priority, retry.period, retry.length,
                              retry.deadline);
  std::printf("  %s %-12s bound %lld\n", d.admitted ? "ADMIT " : "REJECT",
              retry.name, static_cast<long long>(d.bound));

  std::printf("\n%zu channels established; every admitted channel keeps "
              "a guaranteed delay bound at all times.\n",
              ctrl.size());
  return 0;
}
