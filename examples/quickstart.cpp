// Quickstart: define a set of real-time message streams on a mesh, test
// their feasibility, and cross-check the computed delay upper bounds
// against a flit-level simulation.  The stream set is the paper's
// Section 4.4 worked example.
//
//   ./examples/quickstart

#include <cstdio>

#include "core/feasibility.hpp"
#include "core/paper_example.hpp"
#include "sim/simulator.hpp"

using namespace wormrt;

int main() {
  // 1. Build the network and the streams.  make_stream() routes each
  //    stream with X-Y routing and derives its network latency.
  const core::paper::Section44 example = core::paper::section44();
  const core::StreamSet& streams = example.streams;

  std::printf("Network: %s, %d nodes, %zu directed channels\n",
              example.mesh->name().c_str(), example.mesh->num_nodes(),
              example.mesh->num_channels());
  for (const auto& s : streams) {
    std::printf(
        "  M_%d: %s -> %s  priority %d, period %lld, length %lld flits, "
        "deadline %lld, network latency %lld\n",
        s.id, topo::to_string(example.mesh->coord_of(s.src)).c_str(),
        topo::to_string(example.mesh->coord_of(s.dst)).c_str(), s.priority,
        static_cast<long long>(s.period), static_cast<long long>(s.length),
        static_cast<long long>(s.deadline),
        static_cast<long long>(s.latency));
  }

  // 2. Feasibility test: computes every stream's transmission-delay
  //    upper bound U_i and checks U_i <= D_i.
  const core::FeasibilityReport report = core::determine_feasibility(streams);
  std::printf("\nFeasibility: %s\n", report.feasible ? "success" : "fail");
  for (const auto& r : report.streams) {
    std::printf("  M_%d: U = %lld (deadline %lld) — %s   [HP: %d direct, "
                "%d indirect]\n",
                r.id, static_cast<long long>(r.bound),
                static_cast<long long>(streams[r.id].deadline),
                r.ok ? "guaranteed" : "NOT guaranteed", r.hp_direct,
                r.hp_indirect);
  }

  // 3. Cross-check with the flit-level simulator: run 30000 flit times
  //    of the periodic traffic under flit-level preemptive priority
  //    switching and compare observed worst cases against the bounds.
  sim::SimConfig cfg;
  cfg.duration = 30000;
  cfg.warmup = 2000;
  cfg.policy = sim::ArbPolicy::kPriorityPreemptive;
  cfg.num_vcs = 6;  // priorities 1..5 in this example
  sim::Simulator simulator(*example.mesh, streams, cfg);
  const sim::SimResult result = simulator.run();

  std::printf("\nSimulation (%lld cycles, warm-up %lld):\n",
              static_cast<long long>(result.cycles_run),
              static_cast<long long>(cfg.warmup));
  bool all_within = true;
  for (const auto& s : streams) {
    const auto& st = result.per_stream[static_cast<std::size_t>(s.id)];
    const Time bound = report.streams[static_cast<std::size_t>(s.id)].bound;
    const bool ok = st.latency.max() <= static_cast<double>(bound);
    all_within = all_within && ok;
    std::printf("  M_%d: %lld messages, delay avg %.1f / max %.0f — bound "
                "%lld %s\n",
                s.id, static_cast<long long>(st.completed),
                st.latency.mean(), st.latency.max(),
                static_cast<long long>(bound), ok ? "(respected)" : "(!)");
  }
  std::printf("\n%s\n", all_within
                            ? "Every observed delay is within its computed "
                              "upper bound."
                            : "Some observed delay exceeded its bound — "
                              "see EXPERIMENTS.md for the analysis' "
                              "limitations.");
  return report.feasible && all_within ? 0 : 1;
}
