// Capacity planning with the paper's rule of thumb: how many priority
// levels (= virtual channels per physical channel) does a router need so
// that the delay bounds of the most critical traffic are tight?  The
// paper's answer: about |M|/4 levels for the top level's
// actual-to-bound ratio to exceed 0.9.  This tool sweeps the level count
// for a given stream population and prints a recommendation.
//
//   ./examples/capacity_planning [--streams N] [--target 0.9] [--seed S]

#include <cstdio>

#include "common/experiment.hpp"
#include "util/cli.hpp"

using namespace wormrt;

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const int streams = static_cast<int>(args.get_int("streams", 20));
  const double target = args.get_double("target", 0.9);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  std::printf("Capacity planning: %d periodic streams on a 10x10 mesh, "
              "target top-level ratio %.2f\n\n",
              streams, target);
  std::printf("%-7s %-11s %-13s\n", "levels", "top ratio", "bottom ratio");

  int recommended = -1;
  for (int levels = 1; levels <= streams; ++levels) {
    bench::ExperimentParams params;
    params.num_streams = streams;
    params.priority_levels = levels;
    params.seed = seed;
    params.replications = 2;
    const bench::ExperimentResult result = bench::run_experiment(params);
    if (result.rows.empty()) {
      continue;
    }
    const double top = result.rows.front().ratio_mean;
    const double bottom = result.rows.back().ratio_mean;
    std::printf("%-7d %-11.3f %-13.3f\n", levels, top, bottom);
    if (top >= target) {
      if (recommended < 0) {
        recommended = levels;
      }
      if (levels >= (streams + 3) / 4) {
        break;  // past the paper's rule of thumb and already tight
      }
    }
  }

  if (recommended > 0) {
    std::printf("\nRecommendation: provision %d virtual channels per "
                "physical channel (paper's rule of thumb |M|/4 = %d).\n",
                recommended, streams / 4);
  } else {
    std::printf("\nNo level count up to %d reached the target ratio; "
                "reduce load or relax deadlines.\n", streams);
  }
  return 0;
}
