// Priority inversion demo (the paper's Fig. 2 motivation): an emergency
// stop command crossing a backplane congested by bulk telemetry.
// Classical wormhole switching blocks the command behind the bulk worms;
// the paper's flit-level preemptive virtual channels deliver it at its
// contention-free latency.
//
//   ./examples/priority_inversion [--policy fcfs|li|vc|ideal]

#include <cstdio>

#include "core/message_stream.hpp"
#include "route/dor.hpp"
#include "sim/simulator.hpp"
#include "topo/mesh.hpp"
#include "util/cli.hpp"

using namespace wormrt;

namespace {

void run_policy(const char* name, sim::ArbPolicy policy) {
  // A 6x4 mesh backplane.  Bulk telemetry (priority 0) streams down the
  // middle columns; periodic sensor frames (priority 1) cross them; the
  // emergency stop (priority 2) fires once at t = 500 from (0,1) to
  // (5,1), straight through the congested row.
  topo::Mesh mesh(6, 4);
  const route::XYRouting xy;
  core::StreamSet set;
  StreamId id = 0;
  // Bulk telemetry: long worms hogging the row-1 X channels the stop
  // command must cross.
  set.add(core::make_stream(mesh, xy, id++, mesh.node_at({1, 1}),
                            mesh.node_at({5, 0}), 0, 64, 48, 100000));
  set.add(core::make_stream(mesh, xy, id++, mesh.node_at({2, 1}),
                            mesh.node_at({5, 3}), 0, 96, 40, 100000));
  // Sensor frames riding part of the same row.
  set.add(core::make_stream(mesh, xy, id++, mesh.node_at({3, 1}),
                            mesh.node_at({5, 2}), 1, 50, 12, 100000));
  set.add(core::make_stream(mesh, xy, id++, mesh.node_at({4, 3}),
                            mesh.node_at({4, 0}), 1, 70, 16, 100000));
  // Emergency stop: 4 flits, 5 hops -> contention-free latency 8.
  set.add(core::make_stream(mesh, xy, id++, mesh.node_at({0, 1}),
                            mesh.node_at({5, 1}), 2, 1 << 20, 4, 1 << 20));

  sim::SimConfig cfg;
  cfg.duration = 2000;
  cfg.warmup = 0;
  cfg.policy = policy;
  cfg.num_vcs = 3;
  cfg.explicit_phases = {0, 0, 0, 0, 500};
  sim::Simulator simulator(mesh, set, cfg);
  const sim::SimResult r = simulator.run();

  const auto& stop = r.per_stream[4];
  std::printf("%-22s emergency stop delay: %4.0f flit times "
              "(contention-free: %lld)\n",
              name, stop.latency.max(),
              static_cast<long long>(set[4].latency));
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  std::printf("Priority inversion on a congested backplane\n\n");
  if (args.has("policy")) {
    const std::string p = args.get_string("policy", "ideal");
    if (p == "fcfs") {
      run_policy("non-preemptive FCFS:", sim::ArbPolicy::kNonPreemptiveFcfs);
    } else if (p == "li") {
      run_policy("Li's VC scheme:", sim::ArbPolicy::kLiVc);
    } else if (p == "vc") {
      run_policy("preemptive VCs:", sim::ArbPolicy::kPriorityPreemptive);
    } else {
      run_policy("ideal preemptive:", sim::ArbPolicy::kIdealPreemptive);
    }
    return 0;
  }
  run_policy("non-preemptive FCFS:", sim::ArbPolicy::kNonPreemptiveFcfs);
  run_policy("Li's VC scheme:", sim::ArbPolicy::kLiVc);
  run_policy("preemptive VCs:", sim::ArbPolicy::kPriorityPreemptive);
  run_policy("ideal preemptive:", sim::ArbPolicy::kIdealPreemptive);
  std::printf("\nFlit-level preemption (the paper's scheme) removes the "
              "inversion: the stop command no longer waits for bulk "
              "worms to drain.\n");
  return 0;
}
