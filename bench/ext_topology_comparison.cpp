// Extension — topology generality.  Section 2 allows "a topology, such
// as a hypercube or a mesh"; the evaluation only exercises the 10x10
// mesh.  This bench runs the identical pipeline on a mesh, a torus
// (wraparound halves average distance but the routes' channel dependency
// graph acquires cycles), and a 6-cube of comparable size, and reports
// the per-priority tightness on each.

#include <cstdio>

#include "common/experiment.hpp"
#include "util/table.hpp"

int main() {
  using namespace wormrt;
  std::printf("Extension — the delay-bound pipeline across topologies "
              "(20 streams, 5 levels)\n\n");
  util::Table table({"topology", "nodes", "top ratio", "median-ish P2",
                     "bottom ratio", "violations"});
  const bench::TopoKind kinds[] = {bench::TopoKind::kMesh,
                                   bench::TopoKind::kTorus,
                                   bench::TopoKind::kHypercube};
  for (const auto kind : kinds) {
    bench::ExperimentParams params;
    params.topo = kind;
    params.mesh_width = 8;
    params.mesh_height = 8;
    params.hypercube_order = 6;  // 64 nodes either way
    params.num_streams = 20;
    params.priority_levels = 5;
    params.replications = 3;
    const bench::ExperimentResult r = bench::run_experiment(params);
    double top = 0, mid = 0, bottom = 0;
    if (!r.rows.empty()) {
      top = r.rows.front().ratio_mean;
      bottom = r.rows.back().ratio_mean;
      mid = r.rows[r.rows.size() / 2].ratio_mean;
    }
    table.row()
        .cell(bench::to_string(kind))
        .cell(std::int64_t{64})
        .cell(top, 3)
        .cell(mid, 3)
        .cell(bottom, 3)
        .cell(r.bound_violations);
  }
  std::fputs(table.to_ascii().c_str(), stdout);
  std::printf(
      "\nThe bound algorithm is routing-agnostic: it only consumes the "
      "static channel footprints, so the mesh's behaviour carries over "
      "to tori and hypercubes with dimension-order routing.\n");
  return 0;
}
