// Fault-storm benchmark: kills a spine link under an established
// workload, measures the eviction/reroute cascade and the time until
// the admission state has reconverged (victims re-admitted, bounds
// settled), then repairs the link and rolls the storm to the next row.
// Emits BENCH_fault_storm.json.
//
//   ./bench/fault_storm [--streams 60] [--storms 400]
//                       [--mesh 16x16 (cols equal rows: --mesh 16)]
//                       [--out BENCH_fault_storm.json] [--min-speedup N]
//
// The identical storm sequence runs on two engines:
//   incremental   channel-level dirtiness — only the dirty closure of
//                 the faulted channel is recomputed per mutation
//   full          the pre-incremental baseline — every surviving stream
//                 recomputed per mutation
// The ratio of mean reconvergence latencies is the speedup;
// --min-speedup turns it into a CI floor (exit 1 below).  After each
// run the cached bounds are audited against a from-scratch recompute —
// a mismatch is a hard failure, so the bench doubles as a storm-length
// soundness check.

#include <cstdio>
#include <chrono>
#include <fstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/admission.hpp"
#include "core/workload.hpp"
#include "route/dor.hpp"
#include "svc/json.hpp"
#include "topo/mesh.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"

namespace {

using namespace wormrt;
using svc::Json;

double now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct StormResult {
  double storms_per_sec = 0;
  double cascade_p50_us = 0;    // LINK_DOWN alone: evict + reroute +
  double cascade_p99_us = 0;    // dirty recompute
  double reconverge_p50_us = 0; // cascade + re-admission of the victims
  double reconverge_p99_us = 0;
  double reconverge_mean_us = 0;
  double mean_evicted = 0;
  double mean_rerouted = 0;
  double mean_recomputed = 0;   // dirty-closure size per mutation
  std::uint64_t readmission_failures = 0;
  bool bounds_exact = false;    // post-storm audit vs full recompute
};

/// Runs `storms` LINK_DOWN / reconverge / LINK_UP cycles against the
/// central spine column, rotating the faulted row.  The topology is
/// built fresh per run: fault flags mutate it in place.
StormResult run_storm(int side, const route::XYRouting& routing,
                      const core::StreamSet& streams, int storms,
                      core::AdmissionController::Mode mode) {
  topo::Mesh mesh(side, side);
  core::AdmissionController ctrl(mesh, routing, {}, mode);
  std::unordered_map<core::AdmissionController::Handle, std::size_t> owner;
  for (std::size_t i = 0; i < streams.size(); ++i) {
    const core::MessageStream& s = streams[i];
    const auto d = ctrl.request(s.src, s.dst, s.priority, s.period, s.length,
                                s.deadline);
    if (d.admitted) {
      owner.emplace(d.handle, i);
    }
  }

  const auto readmit = [&](core::AdmissionController::Handle h) {
    const auto it = owner.find(h);
    if (it == owner.end()) {
      return false;
    }
    const std::size_t idx = it->second;
    owner.erase(it);
    const core::MessageStream& s = streams[idx];
    const auto d = ctrl.request(s.src, s.dst, s.priority, s.period, s.length,
                                s.deadline);
    if (d.admitted) {
      owner.emplace(d.handle, idx);
    }
    return d.admitted;
  };

  // Each storm kills the busiest link in the spine column — the
  // worst-case fault for the established population.  The scan start
  // rotates so ties spread across rows.
  const auto busiest_spine_channel = [&](int offset) {
    topo::ChannelId pick = topo::kNoChannel;
    std::size_t crossing = 0;
    for (int i = 0; i < side; ++i) {
      const int y = (offset + i) % side;
      const topo::ChannelId ch = mesh.channel_between(
          mesh.node_at({side / 2 - 1, y}), mesh.node_at({side / 2, y}));
      const std::size_t n = ctrl.engine().handles_on_channel(ch).size();
      if (pick == topo::kNoChannel || n > crossing) {
        pick = ch;
        crossing = n;
      }
    }
    return pick;
  };

  StormResult r;
  util::SampleSet cascade, reconverge;
  util::StreamingStats evicted, rerouted, recomputed;
  const double t0 = now_us();
  for (int storm = 0; storm < storms; ++storm) {
    const topo::ChannelId ch = busiest_spine_channel(storm % side);

    const double d0 = now_us();
    const auto m = ctrl.link_down(ch);
    cascade.add(now_us() - d0);
    evicted.add(static_cast<double>(m.evicted.size()));
    rerouted.add(static_cast<double>(m.rerouted.size()));
    recomputed.add(static_cast<double>(m.recomputed.size()));

    // Reconvergence: every victim retries immediately and either lands
    // on a detour or is counted as lost to the fault.
    for (const auto h : m.evicted) {
      if (!readmit(h)) {
        ++r.readmission_failures;
      }
    }
    reconverge.add(now_us() - d0);

    ctrl.link_up(ch);
  }
  const double elapsed_us = now_us() - t0;

  // Storm-length soundness audit: the cached bounds must equal a
  // from-scratch recompute of the surviving population.
  const std::vector<Time> reference = ctrl.engine().full_recompute_bounds();
  r.bounds_exact = true;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    if (ctrl.engine().bound_at(static_cast<StreamId>(i)) != reference[i]) {
      r.bounds_exact = false;
      break;
    }
  }

  r.storms_per_sec = static_cast<double>(storms) / (elapsed_us * 1e-6);
  r.cascade_p50_us = cascade.percentile(50);
  r.cascade_p99_us = cascade.percentile(99);
  r.reconverge_p50_us = reconverge.percentile(50);
  r.reconverge_p99_us = reconverge.percentile(99);
  r.reconverge_mean_us = reconverge.mean();
  r.mean_evicted = evicted.mean();
  r.mean_rerouted = rerouted.mean();
  r.mean_recomputed = recomputed.mean();
  return r;
}

Json to_json(const StormResult& r) {
  Json j = Json::object();
  j.set("storms_per_sec", r.storms_per_sec);
  j.set("cascade_p50_us", r.cascade_p50_us);
  j.set("cascade_p99_us", r.cascade_p99_us);
  j.set("reconverge_p50_us", r.reconverge_p50_us);
  j.set("reconverge_p99_us", r.reconverge_p99_us);
  j.set("reconverge_mean_us", r.reconverge_mean_us);
  j.set("mean_evicted", r.mean_evicted);
  j.set("mean_rerouted", r.mean_rerouted);
  j.set("mean_recomputed", r.mean_recomputed);
  j.set("readmission_failures",
        static_cast<std::int64_t>(r.readmission_failures));
  j.set("bounds_exact", r.bounds_exact);
  return j;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const int n = static_cast<int>(args.get_int("streams", 60));
  const int storms = static_cast<int>(args.get_int("storms", 400));
  const double min_speedup =
      static_cast<double>(args.get_int("min-speedup", 0));
  const std::string out_path =
      args.get_string("out", "BENCH_fault_storm.json");
  const int side = static_cast<int>(args.get_int("mesh", 16));
  if (side < 2 || side * side < n) {
    std::fprintf(stderr, "fault_storm: mesh %dx%d too small for %d streams\n",
                 side, side, n);
    return 2;
  }

  // The workload is generated once on a pristine fabric and replayed
  // identically into both engines.
  topo::Mesh gen_mesh(side, side);
  const route::XYRouting routing;
  core::WorkloadParams wp;
  wp.num_streams = n;
  wp.priority_levels = 4;
  wp.seed = 42;
  core::StreamSet streams = core::generate_workload(gen_mesh, routing, wp);
  core::adjust_periods_to_bounds(streams);

  std::printf("fault_storm: %d streams on %s, %d storms on the spine column\n",
              n, gen_mesh.name().c_str(), storms);

  const StormResult incremental = run_storm(
      side, routing, streams, storms,
      core::AdmissionController::Mode::kIncremental);
  std::printf(
      "  incremental: %8.0f storms/s  cascade p50 %7.1f us  "
      "reconverge p50 %7.1f us  p99 %7.1f us\n",
      incremental.storms_per_sec, incremental.cascade_p50_us,
      incremental.reconverge_p50_us, incremental.reconverge_p99_us);
  const StormResult full = run_storm(
      side, routing, streams, storms,
      core::AdmissionController::Mode::kFullRecompute);
  std::printf(
      "  full:        %8.0f storms/s  cascade p50 %7.1f us  "
      "reconverge p50 %7.1f us  p99 %7.1f us\n",
      full.storms_per_sec, full.cascade_p50_us, full.reconverge_p50_us,
      full.reconverge_p99_us);
  std::printf(
      "  per storm: %.1f evicted, %.1f rerouted, %.1f of %d bounds "
      "recomputed (dirty closure)\n",
      incremental.mean_evicted, incremental.mean_rerouted,
      incremental.mean_recomputed, n);

  if (!incremental.bounds_exact || !full.bounds_exact) {
    std::fprintf(stderr,
                 "fault_storm: FAIL — cached bounds diverged from the "
                 "from-scratch recompute after the storm\n");
    return 3;
  }

  const double speedup =
      incremental.reconverge_mean_us > 0
          ? full.reconverge_mean_us / incremental.reconverge_mean_us
          : 0;
  std::printf("  reconvergence speedup (incremental over full): %.2fx\n",
              speedup);

  Json root = Json::object();
  root.set("bench", "fault_storm");
  root.set("mesh", gen_mesh.name());
  root.set("streams", std::int64_t{n});
  root.set("storms", std::int64_t{storms});
  root.set("incremental", to_json(incremental));
  root.set("full", to_json(full));
  root.set("reconvergence_speedup", speedup);
  std::ofstream out(out_path);
  out << root.dump() << "\n";
  std::printf("  wrote %s\n", out_path.c_str());

  if (min_speedup > 0 && speedup < min_speedup) {
    std::fprintf(stderr,
                 "fault_storm: FAIL — reconvergence speedup %.2fx below "
                 "the --min-speedup %.2fx floor\n",
                 speedup, min_speedup);
    return 1;
  }
  return 0;
}
