// Table 4 of the paper: 5 priority levels, 20 message streams.
// Expected shape: with priority levels >= |M|/4 the highest level's
// ratio exceeds 0.9, and the lowest level improves relative to Table 1.

#include "common/table_main.hpp"

int main(int argc, char** argv) {
  wormrt::bench::ExperimentParams params;
  params.num_streams = 20;
  params.priority_levels = 5;
  return wormrt::bench::run_table_bench(
      argc, argv, params, "Table 4 — 5 priority levels, 20 message streams");
}
