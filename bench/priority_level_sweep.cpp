// Section 5's closing finding: "at least |M|/4 priority levels are
// needed to have the ratio of the highest priority level be higher than
// 0.9" — and with more levels even the lowest level's ratio improves.
// This bench sweeps the number of priority levels for 20/40/60 streams
// and reports the top-level and bottom-level ratios per configuration,
// plus the smallest level count whose top ratio clears 0.9.

#include <cstdio>

#include "common/experiment.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace wormrt;

struct SweepPoint {
  int streams;
  int levels;
  double top_ratio;
  double bottom_ratio;
};

SweepPoint run_point(int streams, int levels, std::uint64_t seed, int reps) {
  bench::ExperimentParams params;
  params.num_streams = streams;
  params.priority_levels = levels;
  params.seed = seed;
  params.replications = reps;
  const bench::ExperimentResult result = bench::run_experiment(params);
  SweepPoint point{streams, levels, 0.0, 0.0};
  if (!result.rows.empty()) {
    point.top_ratio = result.rows.front().ratio_mean;    // highest priority
    point.bottom_ratio = result.rows.back().ratio_mean;  // lowest priority
  }
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const int reps = static_cast<int>(args.get_int("reps", 2));

  std::printf("Priority-level sweep — minimum levels for a tight top-level "
              "bound (paper: |M|/4)\n");
  util::Table table({"streams", "levels", "top ratio", "bottom ratio"});
  const int stream_counts[] = {20, 40, 60};
  for (const int n : stream_counts) {
    int min_levels_for_09 = -1;
    for (const int levels : {1, 2, 3, 4, 5, 8, 10, 15, 20}) {
      if (levels > n) {
        continue;
      }
      const SweepPoint p = run_point(n, levels, seed, reps);
      table.row()
          .cell(static_cast<std::int64_t>(p.streams))
          .cell(static_cast<std::int64_t>(p.levels))
          .cell(p.top_ratio, 3)
          .cell(p.bottom_ratio, 3);
      if (min_levels_for_09 < 0 && p.top_ratio >= 0.9) {
        min_levels_for_09 = levels;
      }
    }
    std::printf("|M| = %d: top-level ratio first exceeds 0.9 at %d "
                "levels (paper's rule-of-thumb |M|/4 = %d)\n",
                n, min_levels_for_09, n / 4);
  }
  std::fputs(table.to_ascii().c_str(), stdout);
  return 0;
}
