#!/usr/bin/env bash
# Runs the analysis micro-benchmarks and emits machine-readable JSON for
# the perf trajectory.
#
#   usage: bench/run_bench.sh [build-dir] [out.json] [min-time-seconds]
#
# The filter covers the hot analysis paths: Cal_U, the bit-packed timing
# diagram build, the blocking analysis, and the multi-threaded
# determine_feasibility scaling rows (threads 1/2/4/hw on 60 streams).
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_analysis.json}"
MIN_TIME="${3:-0.2}"

BIN="$BUILD_DIR/bench/perf_micro"
if [[ ! -x "$BIN" ]]; then
  echo "error: $BIN not built (cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j)" >&2
  exit 1
fi

"$BIN" \
  --benchmark_filter='BM_CalU|BM_TimingDiagramBuild|BM_BlockingAnalysis|BM_DetermineFeasibility/' \
  --benchmark_min_time="$MIN_TIME" \
  --benchmark_format=console \
  --benchmark_out_format=json \
  --benchmark_out="$OUT"

echo "wrote $OUT"

# Observability-layer costs, next to the analysis numbers: counter
# increment, histogram observe, and the span guard both disabled (the
# default state of every hot path) and enabled.
OBS_OUT="$(dirname "$OUT")/BENCH_obs.json"
"$BIN" \
  --benchmark_filter='BM_Obs' \
  --benchmark_min_time="$MIN_TIME" \
  --benchmark_format=console \
  --benchmark_out_format=json \
  --benchmark_out="$OBS_OUT"

echo "wrote $OBS_OUT"

# Flit-accurate simulator throughput: events/s and flits/s as the mesh
# and population scale (32x32 rows are the large-mesh regime), plus the
# parallel-replication scaling rows (threads 1/2/4/hw; bitwise-identical
# results across thread counts).
FLITSIM_OUT="$(dirname "$OUT")/BENCH_flitsim.json"
"$BIN" \
  --benchmark_filter='BM_FlitSim' \
  --benchmark_min_time="$MIN_TIME" \
  --benchmark_format=console \
  --benchmark_out_format=json \
  --benchmark_out="$FLITSIM_OUT"

echo "wrote $FLITSIM_OUT"

# Service-layer throughput: admission churn through the socket server in
# four modes (no journal, durable serial, durable pipelined with group
# commit, pipelined with fsync off).  Emits p50/p99 per mode plus the
# pipelined-vs-serial speedup ratios the perf-smoke CI step checks.
SVC_BIN="$BUILD_DIR/bench/svc_churn"
SVC_OUT="$(dirname "$OUT")/BENCH_service.json"
if [[ ! -x "$SVC_BIN" ]]; then
  echo "error: $SVC_BIN not built" >&2
  exit 1
fi

"$SVC_BIN" \
  --ops "${SVC_OPS:-4000}" \
  --clients "${SVC_CLIENTS:-4}" \
  --pipeline-clients "${SVC_PIPELINE_CLIENTS:-8}" \
  --batch-window "${SVC_BATCH_WINDOW:-16}" \
  --max-obs-overhead-pct "${SVC_MAX_OBS_OVERHEAD_PCT:-1}" \
  --obs-out "$SVC_OUT.obs.tmp" \
  --out "$SVC_OUT"

echo "wrote $SVC_OUT"

# Fold the service-layer A/B (durable-pipelined with the HISTORY
# sampler + REPORT sweeps vs without, floor enforced above) into the
# observability artifact next to the per-operation micro costs.
python3 - "$OBS_OUT" "$SVC_OUT.obs.tmp" <<'PY'
import json, sys
obs = json.load(open(sys.argv[1]))
obs["svc_overhead"] = json.load(open(sys.argv[2]))
json.dump(obs, open(sys.argv[1], "w"), indent=1)
PY
rm -f "$SVC_OUT.obs.tmp"
echo "merged sampler+conformance A/B into $OBS_OUT"

# Fault storm: kill the busiest spine link under an established
# workload, measure the eviction/reroute cascade and the time until the
# admission state reconverges, on the incremental engine vs the full
# recompute baseline.  Also audits post-storm bounds against a
# from-scratch recompute (hard failure on divergence).
STORM_BIN="$BUILD_DIR/bench/fault_storm"
STORM_OUT="$(dirname "$OUT")/BENCH_fault_storm.json"
if [[ ! -x "$STORM_BIN" ]]; then
  echo "error: $STORM_BIN not built" >&2
  exit 1
fi

"$STORM_BIN" \
  --streams "${STORM_STREAMS:-60}" \
  --storms "${STORM_OPS:-400}" \
  --out "$STORM_OUT"

echo "wrote $STORM_OUT"
