// Table 3 of the paper: 4 priority levels, 20 message streams.
// Expected shape: per-level ratios improve over Table 1, highest level
// first; more levels = tighter bounds.

#include "common/table_main.hpp"

int main(int argc, char** argv) {
  wormrt::bench::ExperimentParams params;
  params.num_streams = 20;
  params.priority_levels = 4;
  return wormrt::bench::run_table_bench(
      argc, argv, params, "Table 3 — 4 priority levels, 20 message streams");
}
