// Ablation A — what each analysis ingredient buys:
//   * U with the full algorithm (indirect relaxation via Modify_Diagram),
//   * U with relaxation disabled (every HP element treated as direct),
//   * the Mutka-style rate-monotonic response-time bound over direct
//     interferers only (the related work the paper argues against).
// Reported over the Table-3 and Table-5 workloads.

#include <cstdio>

#include "baselines/rm_bound.hpp"
#include "core/delay_bound.hpp"
#include "core/workload.hpp"
#include "route/dor.hpp"
#include "topo/mesh.hpp"
#include "util/table.hpp"

namespace {

using namespace wormrt;
using namespace wormrt::core;

void run_config(const char* label, int streams_n, int levels,
                std::uint64_t seed, util::Table& table) {
  topo::Mesh mesh(10, 10);
  const route::XYRouting xy;
  WorkloadParams wp;
  wp.num_streams = streams_n;
  wp.priority_levels = levels;
  wp.seed = seed;
  StreamSet streams = generate_workload(mesh, xy, wp);
  adjust_periods_to_bounds(streams);

  const BlockingAnalysis blocking(streams);
  AnalysisConfig full;
  full.horizon = HorizonPolicy::kExtended;
  AnalysisConfig norelax = full;
  norelax.relaxation = IndirectRelaxation::kNone;
  const DelayBoundCalculator calc_full(streams, blocking, full);
  const DelayBoundCalculator calc_norelax(streams, blocking, norelax);

  double sum_full = 0, sum_norelax = 0, sum_rm = 0;
  int tightened = 0, rm_below_full = 0, rm_diverged = 0, counted = 0;
  for (const auto& s : streams) {
    const Time u_full = calc_full.calc(s.id).bound;
    const Time u_norelax = calc_norelax.calc(s.id).bound;
    const auto rm = baseline::rm_response_time_bound(streams, blocking, s.id);
    if (u_full == kNoTime || u_norelax == kNoTime) {
      continue;  // capped either way; ratios would be meaningless
    }
    ++counted;
    sum_full += static_cast<double>(u_full);
    sum_norelax += static_cast<double>(u_norelax);
    if (u_norelax > u_full) {
      ++tightened;
    }
    if (rm.bound == kNoTime) {
      ++rm_diverged;
    } else {
      sum_rm += static_cast<double>(rm.bound);
      if (rm.bound < u_full) {
        ++rm_below_full;
      }
    }
  }
  table.row()
      .cell(label)
      .cell(static_cast<std::int64_t>(counted))
      .cell(sum_full / counted, 1)
      .cell(sum_norelax / counted, 1)
      .cell(static_cast<std::int64_t>(tightened))
      .cell(rm_diverged == counted ? 0.0 : sum_rm / (counted - rm_diverged), 1)
      .cell(static_cast<std::int64_t>(rm_below_full))
      .cell(static_cast<std::int64_t>(rm_diverged));
}

}  // namespace

int main() {
  std::printf(
      "Ablation — indirect relaxation (Modify_Diagram) and the "
      "rate-monotonic baseline\n"
      "columns: mean U (full) vs mean U (relaxation off; never smaller); "
      "streams tightened by relaxation; mean RM bound; streams where the "
      "RM bound is below the full U (RM ignores blocking chains, so it "
      "can be optimistic); streams where RM diverges (path utilization "
      ">= 1, which the window-capped diagram tolerates)\n\n");
  util::Table table({"workload", "streams", "U full", "U no-relax",
                     "tightened", "RM bound", "RM<U", "RM div"});
  run_config("20 streams / 4 levels", 20, 4, 1, table);
  run_config("20 streams / 5 levels", 20, 5, 1, table);
  run_config("60 streams / 15 levels", 60, 15, 1, table);
  std::fputs(table.to_ascii().c_str(), stdout);
  return 0;
}
