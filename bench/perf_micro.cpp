// Micro-benchmarks (google-benchmark): simulator throughput and the
// analysis algorithms' scaling in the number of streams.

#include <benchmark/benchmark.h>

#include "core/admission.hpp"
#include "core/delay_bound.hpp"
#include "core/feasibility.hpp"
#include "core/workload.hpp"
#include "flitsim/flit_sim.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "route/dor.hpp"
#include "sim/simulator.hpp"
#include "topo/mesh.hpp"

namespace {

using namespace wormrt;
using namespace wormrt::core;

StreamSet make_workload(const topo::Mesh& mesh, int n, int levels) {
  const route::XYRouting xy;
  WorkloadParams wp;
  wp.num_streams = n;
  wp.priority_levels = levels;
  wp.seed = 42;
  StreamSet streams = generate_workload(mesh, xy, wp);
  adjust_periods_to_bounds(streams);
  return streams;
}

void BM_SimulatorRun(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  topo::Mesh mesh(10, 10);
  const StreamSet streams = make_workload(mesh, n, 4);
  sim::SimConfig cfg;
  cfg.duration = 10000;
  cfg.warmup = 0;
  cfg.num_vcs = 4;
  cfg.vc_buffer_depth = 8;
  std::int64_t flits = 0;
  for (auto _ : state) {
    sim::Simulator sim(mesh, streams, cfg);
    const auto result = sim.run();
    flits += result.flits_ejected;
    benchmark::DoNotOptimize(result.flits_ejected);
  }
  state.counters["cycles/s"] = benchmark::Counter(
      static_cast<double>(cfg.duration) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
  state.counters["flits/s"] =
      benchmark::Counter(static_cast<double>(flits), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatorRun)->Arg(20)->Arg(60)->Unit(benchmark::kMillisecond);

// Flit-accurate backend throughput (BENCH_flitsim.json): events/s and
// flits/s of the event-driven router as the mesh and the population
// scale.  Args are {mesh side, streams}: the 32x32 row is the "large
// mesh, thousands of flits in flight" regime the event queue and the
// per-channel wire deques are designed for.
void BM_FlitSim(benchmark::State& state) {
  const auto side = static_cast<int>(state.range(0));
  const auto n = static_cast<int>(state.range(1));
  topo::Mesh mesh(side, side);
  const StreamSet streams = make_workload(mesh, n, 4);
  flitsim::FlitSimConfig cfg;
  cfg.duration = 10000;
  cfg.warmup = 0;
  cfg.vc_buffer_depth = 4;
  std::int64_t events = 0;
  std::int64_t flits = 0;
  for (auto _ : state) {
    flitsim::FlitSimulator sim(mesh, streams, cfg);
    const auto result = sim.run();
    events += result.events_processed;
    flits += result.flits_delivered;
    benchmark::DoNotOptimize(result.flits_delivered);
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
  state.counters["flits/s"] = benchmark::Counter(
      static_cast<double>(flits), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FlitSim)
    ->Args({10, 20})->Args({10, 60})->Args({32, 200})->Args({32, 1000})
    ->Unit(benchmark::kMillisecond);

// Parallel replications on the shared thread pool: the scaling knob the
// ablation benches use.  Args are {replications, threads}; the
// threads=1 row is the serial baseline of the speedup ratio (results
// are bitwise identical across rows — see FlitSimDeterminism).
void BM_FlitSimReplications(benchmark::State& state) {
  const auto reps = static_cast<int>(state.range(0));
  const auto threads = static_cast<int>(state.range(1));
  topo::Mesh mesh(10, 10);
  const StreamSet streams = make_workload(mesh, 40, 4);
  flitsim::FlitSimConfig cfg;
  cfg.duration = 5000;
  cfg.warmup = 0;
  cfg.vc_buffer_depth = 4;
  for (auto _ : state) {
    const auto results =
        flitsim::run_replications(mesh, streams, cfg, reps, threads);
    benchmark::DoNotOptimize(results.size());
  }
  state.counters["reps/s"] = benchmark::Counter(
      static_cast<double>(reps) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FlitSimReplications)
    ->Args({8, 1})->Args({8, 2})->Args({8, 4})->Args({8, 0})
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_BlockingAnalysis(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  topo::Mesh mesh(10, 10);
  const StreamSet streams = make_workload(mesh, n, 4);
  for (auto _ : state) {
    BlockingAnalysis blocking(streams);
    benchmark::DoNotOptimize(blocking.hp_set(0).size());
  }
}
BENCHMARK(BM_BlockingAnalysis)->Arg(10)->Arg(20)->Arg(40)->Arg(60);

void BM_CalU(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  topo::Mesh mesh(10, 10);
  const StreamSet streams = make_workload(mesh, n, 4);
  const BlockingAnalysis blocking(streams);
  AnalysisConfig cfg;
  cfg.horizon = HorizonPolicy::kExtended;
  const DelayBoundCalculator calc(streams, blocking, cfg);
  // Lowest-priority stream: largest HP set, hardest call.
  const StreamId victim = streams.by_priority_desc().back();
  for (auto _ : state) {
    benchmark::DoNotOptimize(calc.calc(victim).bound);
  }
}
BENCHMARK(BM_CalU)->Arg(10)->Arg(20)->Arg(40)->Arg(60)
    ->Unit(benchmark::kMicrosecond);

void BM_DetermineFeasibilityPipeline(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  topo::Mesh mesh(10, 10);
  const route::XYRouting xy;
  WorkloadParams wp;
  wp.num_streams = n;
  wp.priority_levels = 5;
  wp.seed = 7;
  for (auto _ : state) {
    StreamSet streams = generate_workload(mesh, xy, wp);
    const auto adjusted = adjust_periods_to_bounds(streams);
    benchmark::DoNotOptimize(adjusted.iterations);
  }
}
BENCHMARK(BM_DetermineFeasibilityPipeline)->Arg(20)->Arg(60)
    ->Unit(benchmark::kMillisecond);

// Whole-set feasibility with the per-stream Cal_U calls fanned out over
// the thread pool: args are {streams, threads}.  The report is bitwise
// identical across thread counts; the threads=1 row is the serial
// paper-fidelity path and the baseline of the scaling ratio.
void BM_DetermineFeasibility(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  topo::Mesh mesh(10, 10);
  const StreamSet streams = make_workload(mesh, n, 4);
  AnalysisConfig cfg;
  cfg.horizon = HorizonPolicy::kExtended;
  cfg.num_threads = static_cast<int>(state.range(1));
  for (auto _ : state) {
    const FeasibilityReport report = determine_feasibility(streams, cfg);
    benchmark::DoNotOptimize(report.feasible);
  }
}
BENCHMARK(BM_DetermineFeasibility)
    ->Args({60, 1})->Args({60, 2})->Args({60, 4})->Args({60, 0})
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// Admission churn under a standing population: each iteration tears one
// established channel down and re-establishes it.  Args are {streams,
// mode} with mode 0 = incremental (recompute only the mutation's dirty
// closure) and mode 1 = full recompute per decision (the
// pre-incremental baseline).  Decisions are identical in both modes;
// the ratio of the two rows at equal n is the incremental speedup.
void BM_AdmissionChurn(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  const auto mode = state.range(1) == 0
                        ? AdmissionController::Mode::kIncremental
                        : AdmissionController::Mode::kFullRecompute;
  topo::Mesh mesh(16, 16);
  const route::XYRouting xy;
  WorkloadParams wp;
  wp.num_streams = n;
  wp.priority_levels = 4;
  wp.seed = 42;
  StreamSet streams = generate_workload(mesh, xy, wp);
  adjust_periods_to_bounds(streams);  // whole set feasible => all admitted

  AdmissionController ctrl(mesh, xy, {}, mode);
  std::vector<AdmissionController::Handle> handles;
  for (const MessageStream& s : streams) {
    const auto d = ctrl.request(s.src, s.dst, s.priority, s.period, s.length,
                                s.deadline);
    handles.push_back(d.admitted ? d.handle : -1);
  }

  std::size_t idx = 0;
  for (auto _ : state) {
    while (handles[idx] < 0) {
      idx = (idx + 1) % handles.size();
    }
    const MessageStream& s = streams[static_cast<StreamId>(idx)];
    ctrl.remove(handles[idx]);
    const auto d = ctrl.request(s.src, s.dst, s.priority, s.period, s.length,
                                s.deadline);
    handles[idx] = d.admitted ? d.handle : -1;
    benchmark::DoNotOptimize(d.bound);
    idx = (idx + 1) % handles.size();
  }
  state.counters["population"] = static_cast<double>(ctrl.size());
  state.counters["decisions/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_AdmissionChurn)
    ->Args({20, 0})->Args({20, 1})
    ->Args({60, 0})->Args({60, 1})
    ->Args({200, 0})->Args({200, 1})
    ->Unit(benchmark::kMillisecond);

void BM_XyRouting(benchmark::State& state) {
  topo::Mesh mesh(16, 16);
  const route::XYRouting xy;
  topo::NodeId src = 0;
  for (auto _ : state) {
    const auto path = xy.route(mesh, src, mesh.num_nodes() - 1 - src);
    benchmark::DoNotOptimize(path.hops());
    src = (src + 37) % (mesh.num_nodes() / 2);
  }
}
BENCHMARK(BM_XyRouting);

void BM_TimingDiagramBuild(benchmark::State& state) {
  const auto rows_n = static_cast<std::size_t>(state.range(0));
  std::vector<RowSpec> rows;
  for (std::size_t r = 0; r < rows_n; ++r) {
    rows.push_back(RowSpec{static_cast<StreamId>(r),
                           static_cast<Priority>(rows_n - r),
                           static_cast<Time>(40 + 7 * (r % 8)),
                           static_cast<Time>(1 + (r % 40))});
  }
  for (auto _ : state) {
    TimingDiagram d(rows, /*horizon=*/4096, /*carry_over=*/false);
    benchmark::DoNotOptimize(d.accumulate_free(64));
  }
}
BENCHMARK(BM_TimingDiagramBuild)->Arg(4)->Arg(16)->Arg(60)
    ->Unit(benchmark::kMicrosecond);

// --- Observability-layer costs (BENCH_obs.json) -------------------------
// The contract the obs layer must keep: a counter increment is one
// relaxed atomic op, a histogram observe one uncontended mutex, and a
// span guard with tracing DISABLED (the state every analysis hot path
// runs in by default) one relaxed load + branch — the <2% budget on
// BM_CalU / BM_AdmissionChurn.

void BM_ObsCounterInc(benchmark::State& state) {
  obs::Registry reg;
  obs::Counter& c = reg.counter("bench_counter_total");
  for (auto _ : state) {
    c.inc();
  }
  benchmark::DoNotOptimize(c.value());
}
BENCHMARK(BM_ObsCounterInc);

void BM_ObsHistogramObserve(benchmark::State& state) {
  obs::Registry reg;
  obs::Histogram& h = reg.histogram("bench_latency_us", 0.0, 5000.0, 50);
  double x = 0.0;
  for (auto _ : state) {
    h.observe(x);
    x += 17.0;
    if (x >= 5000.0) {
      x -= 5000.0;
    }
  }
  benchmark::DoNotOptimize(h.count());
}
BENCHMARK(BM_ObsHistogramObserve);

void BM_ObsSpanDisabled(benchmark::State& state) {
  obs::Tracer::set_enabled(false);
  for (auto _ : state) {
    OBS_SPAN("bench_disabled");
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_ObsSpanDisabled);

void BM_ObsSpanEnabled(benchmark::State& state) {
  obs::Tracer::set_enabled(true);
  obs::Tracer::clear();
  std::size_t spans = 0;
  for (auto _ : state) {
    OBS_SPAN("bench_enabled");
    benchmark::ClobberMemory();
    // Drop the buffered events periodically so a long --benchmark_min_time
    // run cannot hit the per-thread event cap and silence the record path.
    if (++spans == (1u << 19)) {
      state.PauseTiming();
      obs::Tracer::clear();
      spans = 0;
      state.ResumeTiming();
    }
  }
  obs::Tracer::set_enabled(false);
  obs::Tracer::clear();
}
BENCHMARK(BM_ObsSpanEnabled);

}  // namespace

BENCHMARK_MAIN();
