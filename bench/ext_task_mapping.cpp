// Extension — job allocation quality.  Section 2 notes that frequently
// communicating jobs "could be mapped to relatively nearby processing
// nodes" but leaves allocation out of scope.  This bench quantifies how
// much the mapping matters for the paper's own metric: random placement
// vs the communication-weighted greedy + hill-climbing mapper, measured
// by contention cost, feasibility, and mean delay bound.

#include <cstdio>

#include "core/feasibility.hpp"
#include "core/task_mapping.hpp"
#include "route/dor.hpp"
#include "topo/mesh.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace wormrt;
using namespace wormrt::core;

TaskGraph random_job(std::uint64_t seed) {
  // 12 tasks: a processing pipeline with side flows, the kind of job
  // Fig. 1's host processor downloads onto a node group.
  util::Rng rng(seed);
  TaskGraph g;
  g.num_tasks = 12;
  for (int t = 0; t + 1 < g.num_tasks; ++t) {
    g.flows.push_back(TaskFlow{t, t + 1,
                               static_cast<Priority>(rng.uniform_int(1, 3)),
                               rng.uniform_int(40, 90),
                               rng.uniform_int(8, 25), 300});
  }
  for (int i = 0; i < 6; ++i) {
    const int a = static_cast<int>(rng.uniform_int(0, g.num_tasks - 1));
    const int b = static_cast<int>(rng.uniform_int(0, g.num_tasks - 2));
    g.flows.push_back(TaskFlow{a, b >= a ? b + 1 : b,
                               static_cast<Priority>(rng.uniform_int(0, 2)),
                               rng.uniform_int(60, 150),
                               rng.uniform_int(2, 12), 300});
  }
  return g;
}

struct Summary {
  double cost = 0;
  double mean_bound = 0;
  int feasible = 0;
};

void accumulate(const MappingResult& m, Summary& s) {
  s.cost += m.cost;
  const FeasibilityReport report = determine_feasibility(m.streams);
  s.feasible += report.feasible ? 1 : 0;
  double sum = 0;
  int counted = 0;
  for (const auto& r : report.streams) {
    if (r.bound != kNoTime) {
      sum += static_cast<double>(r.bound);
      ++counted;
    }
  }
  s.mean_bound += counted ? sum / counted : 0.0;
}

}  // namespace

int main() {
  const topo::Mesh mesh(8, 8);
  const route::XYRouting xy;
  constexpr int kTrials = 15;
  Summary random_s, mapped_s;
  int mapped_improvements = 0;
  for (int t = 0; t < kTrials; ++t) {
    const TaskGraph g = random_job(static_cast<std::uint64_t>(t + 1));
    accumulate(map_tasks_randomly(g, mesh, xy, t + 1), random_s);
    const MappingResult m = map_tasks(g, mesh, xy, t + 1);
    mapped_improvements += m.improvements;
    accumulate(m, mapped_s);
  }

  std::printf("Extension — job allocation on an 8x8 mesh "
              "(12-task jobs, %d random draws)\n\n", kTrials);
  util::Table table(
      {"placement", "contention cost", "mean bound U", "feasible jobs"});
  table.row()
      .cell("uniform random")
      .cell(random_s.cost / kTrials, 2)
      .cell(random_s.mean_bound / kTrials, 1)
      .cell(static_cast<std::int64_t>(random_s.feasible));
  table.row()
      .cell("greedy + hill climb")
      .cell(mapped_s.cost / kTrials, 2)
      .cell(mapped_s.mean_bound / kTrials, 1)
      .cell(static_cast<std::int64_t>(mapped_s.feasible));
  std::fputs(table.to_ascii().c_str(), stdout);
  std::printf("\nhill-climb improvements accepted: %.1f per job\n",
              static_cast<double>(mapped_improvements) / kTrials);
  std::printf("Expected shape: nearby placement shortens paths, cutting "
              "both contention cost and the delay bounds the host "
              "processor must certify.\n");
  return 0;
}
