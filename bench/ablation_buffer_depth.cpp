// Ablation D — VC buffer depth x port modelling, against bound
// soundness, measured by BOTH simulation backends.  Cal_U charges each
// interferer C flits per period on a lumped path timeline and (as
// published) ignores the node's single ejection port.  On canonical
// wormhole hardware (single-flit VC buffers) the pipeline is so tightly
// coupled that an un-modelled ejection stall forfeits channel slack the
// analysis counted on, and measured delays exceed the bound; deeper
// buffers decouple the pipeline, and modelling the ports as shared
// resources (our default) restores soundness.  This is a substantive
// finding about the paper's analysis — see EXPERIMENTS.md.
//
// The flit-accurate backend (flitsim: real credit flow control, not the
// idealized preemptive model) is the ground truth here: at depth 1 it
// additionally exposes the 2-cycle credit round trip, which the ideal
// backend cannot represent at any depth, so its depth-1 rows are
// strictly harsher than the ideal backend's — the committed regression
// scenario for the buffer-depth axis.

#include <cstdio>

#include "common/experiment.hpp"
#include "util/table.hpp"

int main() {
  using namespace wormrt;
  std::printf(
      "Ablation — per-VC flit buffer depth x ejection/injection port "
      "modelling x simulation backend\n(Table-3 workload, 20 streams, 4 "
      "levels)\n\n");
  util::Table table({"backend", "ports in analysis", "depth", "violations",
                     "messages", "violation %", "worst P1 actual"});
  for (const bench::SimBackend backend :
       {bench::SimBackend::kIdeal, bench::SimBackend::kFlit}) {
    for (const bool ports : {false, true}) {
      for (const int depth : {1, 2, 4, 8, 40}) {
        bench::ExperimentParams params;
        params.num_streams = 20;
        params.priority_levels = 4;
        params.replications = 3;
        params.backend = backend;
        params.vc_buffer_depth = depth;
        params.analysis.ejection_port_overlap = ports;
        params.analysis.injection_port_overlap = ports;
        const bench::ExperimentResult r = bench::run_experiment(params);
        double p1 = 0;
        for (const auto& row : r.rows) {
          if (row.priority == 1) {
            p1 = row.actual_mean;
          }
        }
        table.row()
            .cell(bench::to_string(backend))
            .cell(ports ? "modelled" : "ignored (paper)")
            .cell(static_cast<std::int64_t>(depth))
            .cell(r.bound_violations)
            .cell(r.messages_measured)
            .cell(100.0 * static_cast<double>(r.bound_violations) /
                      static_cast<double>(r.messages_measured),
                  2)
            .cell(p1, 1);
      }
    }
  }
  std::fputs(table.to_ascii().c_str(), stdout);
  return 0;
}
