// Figure 2 of the paper: priority inversion in classical wormhole
// switching.  A low-priority worm (message 1, priority 2) holds the
// contended outgoing channel; a queue of medium-priority worms
// (messages 2..n, priority 3) waits FCFS; the highest-priority message B
// (priority 4) arrives last and — without preemption — is blocked behind
// all of them.  With the paper's flit-level preemptive VCs, B sails
// through at its contention-free latency.

#include <cstdio>

#include "core/message_stream.hpp"
#include "route/dor.hpp"
#include "sim/simulator.hpp"
#include "topo/mesh.hpp"
#include "util/table.hpp"

namespace {

using namespace wormrt;

struct Outcome {
  double latency_b;       // the priority-4 message
  double latency_low;     // the priority-2 holder
  double worst_medium;    // worst of the priority-3 queue
};

Outcome run(sim::ArbPolicy policy) {
  // A 1x8 row: every stream funnels into the channel (4,0)->(5,0).
  topo::Mesh mesh(8, 1);
  const route::XYRouting xy;
  core::StreamSet set;
  const Time kLong = 1 << 20;  // single-shot messages
  // Message 1 (priority 2): long worm released first, holds the channel.
  set.add(core::make_stream(mesh, xy, 0, mesh.node_at({0, 0}),
                            mesh.node_at({7, 0}), 2, kLong, 50, kLong));
  // Messages 2..3 (priority 3): queue up behind it.
  set.add(core::make_stream(mesh, xy, 1, mesh.node_at({1, 0}),
                            mesh.node_at({6, 0}), 3, kLong, 30, kLong));
  set.add(core::make_stream(mesh, xy, 2, mesh.node_at({2, 0}),
                            mesh.node_at({6, 0}), 3, kLong, 30, kLong));
  // Message B (priority 4): released last, should go first.
  set.add(core::make_stream(mesh, xy, 3, mesh.node_at({3, 0}),
                            mesh.node_at({5, 0}), 4, kLong, 6, kLong));

  sim::SimConfig cfg;
  cfg.duration = 31;
  cfg.warmup = 0;
  cfg.policy = policy;
  cfg.num_vcs = 5;  // priorities 0..4
  cfg.explicit_phases = {0, 5, 10, 30};
  sim::Simulator sim(mesh, set, cfg);
  const sim::SimResult r = sim.run();

  Outcome out{};
  out.latency_b = r.per_stream[3].latency.max();
  out.latency_low = r.per_stream[0].latency.max();
  out.worst_medium =
      std::max(r.per_stream[1].latency.max(), r.per_stream[2].latency.max());
  return out;
}

}  // namespace

int main() {
  std::printf(
      "Figure 2 — priority inversion at a contended switch output\n"
      "message B: priority 4, 6 flits, 2 hops (contention-free latency "
      "7); released after a 50-flit priority-2 worm and two 30-flit "
      "priority-3 worms claim the channel\n\n");
  util::Table table({"policy", "B (prio 4)", "worst prio 3", "prio 2"});
  const sim::ArbPolicy policies[] = {sim::ArbPolicy::kNonPreemptiveFcfs,
                                     sim::ArbPolicy::kLiVc,
                                     sim::ArbPolicy::kPriorityPreemptive,
                                     sim::ArbPolicy::kIdealPreemptive};
  for (const auto policy : policies) {
    const Outcome o = run(policy);
    table.row()
        .cell(sim::to_string(policy))
        .cell(o.latency_b, 0)
        .cell(o.worst_medium, 0)
        .cell(o.latency_low, 0);
  }
  std::fputs(table.to_ascii().c_str(), stdout);
  std::printf(
      "\nExpected shape: under non-preemptive FCFS the priority-4 message "
      "is inverted (delay ~an order of magnitude above 7); flit-level "
      "preemption delivers it at ~its contention-free latency at the "
      "expense of the lower-priority worms.\n");
  return 0;
}
