// Table 5 of the paper: 15 priority levels, 60 message streams.
// Expected shape: 15 = |M|/4 levels restore tight bounds at the top of
// the priority order even for the loaded 60-stream system, with ratios
// decreasing monotonically-ish down the levels.

#include "common/table_main.hpp"

int main(int argc, char** argv) {
  wormrt::bench::ExperimentParams params;
  params.num_streams = 60;
  params.priority_levels = 15;
  return wormrt::bench::run_table_bench(
      argc, argv, params,
      "Table 5 — 15 priority levels, 60 message streams");
}
