// Extension — the VC-cost question behind the paper's Section 3 choice.
// The paper provisions one virtual channel per priority level and notes
// that Song's throttle-and-preempt achieves the same arrival behaviour
// "with a smaller number of virtual channels" at the price of killed
// and retransmitted messages.  This bench pits the two router designs
// against each other on the Table-3 workload: the per-priority scheme
// with 4 VCs versus throttle-and-preempt with 1..4 VCs.

#include <cstdio>

#include "common/experiment.hpp"
#include "util/table.hpp"

int main() {
  using namespace wormrt;
  std::printf(
      "Extension — per-priority VCs vs Song-style throttle-and-preempt "
      "(20 streams, 4 levels)\n\n");
  util::Table table({"router", "VCs", "P3 actual", "P0 actual",
                     "retransmits", "wasted flits", "violations"});

  const auto run = [&](const char* name, sim::ArbPolicy policy, int vcs) {
    bench::ExperimentParams params;
    params.num_streams = 20;
    params.priority_levels = 4;
    params.replications = 3;
    params.policy = policy;
    params.num_vcs_override = vcs;
    const bench::ExperimentResult r = bench::run_experiment(params);
    double top = 0, bottom = 0;
    for (const auto& row : r.rows) {
      if (row.priority == 3) {
        top = row.actual_mean;
      }
      if (row.priority == 0) {
        bottom = row.actual_mean;
      }
    }
    table.row()
        .cell(name)
        .cell(static_cast<std::int64_t>(vcs))
        .cell(top, 1)
        .cell(bottom, 1)
        .cell(r.retransmissions)
        .cell(r.flits_dropped)
        .cell(r.bound_violations);
  };

  run("per-priority VCs (paper)", sim::ArbPolicy::kPriorityPreemptive, 4);
  for (const int vcs : {1, 2, 3, 4}) {
    run("throttle-and-preempt", sim::ArbPolicy::kThrottlePreempt, vcs);
  }
  std::fputs(table.to_ascii().c_str(), stdout);
  std::printf(
      "\nExpected shape: throttle-and-preempt keeps top-priority delays "
      "preemption-fast with as little as one VC, but pays in dropped "
      "flits and retransmissions that grow as VCs shrink; its throttled "
      "(one message per source) injection also stretches low-priority "
      "delays under load.\n");
  return 0;
}
