// wormrtd load generator: measures the admission-control service under
// churn and emits BENCH_service.json.
//
//   ./bench/svc_churn [--streams 60] [--ops 1500] [--clients 4]
//                     [--pipeline-clients 8] [--batch-window 16]
//                     [--mesh 16x16 (cols equal rows: --mesh 16)]
//                     [--out BENCH_service.json] [--obs-out FILE]
//                     [--min-durable-speedup N] [--min-nofsync-speedup N]
//                     [--max-obs-overhead-pct P]
//
// Measurements:
//   1. in-process churn with the incremental engine (decision latency
//      percentiles and decisions/s),
//   2. the same operation sequence under full recompute per decision
//      (the pre-incremental baseline; the ratio is the speedup),
//   3. end-to-end over a real Unix-domain socket, four ways:
//        socket                   no journal, one call per request
//                                 (the wire-overhead reference)
//        socket_durable_serial    journal + fsync, group commit OFF —
//                                 one fsync per mutation, the PR-5
//                                 durability baseline
//        socket_durable_pipelined journal + fsync, group commit ON,
//                                 clients pipeline BATCH lines — many
//                                 admissions share one fsync
//        socket_pipelined         journal, fsync off, pipelined BATCH —
//                                 the engine/wire ceiling
//      The headline ratios (socket_durable_pipelined and
//      socket_pipelined over socket_durable_serial) quantify what
//      group commit + pipelining buy; --min-durable-speedup /
//      --min-nofsync-speedup turn them into CI floors (exit 1 below).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/admission.hpp"
#include "core/workload.hpp"
#include "route/dor.hpp"
#include "svc/json.hpp"
#include "svc/replication.hpp"
#include "svc/server.hpp"
#include "svc/service.hpp"
#include "topo/mesh.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

#include <unistd.h>

namespace {

using namespace wormrt;
using svc::Json;

double now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct ChurnResult {
  double decisions_per_sec = 0;
  double p50_us = 0;
  double p99_us = 0;
  double mean_us = 0;
};

/// Establishes the feasible population, then runs `ops` single-channel
/// teardown + re-establishment cycles, timing each decision.
ChurnResult run_inprocess(topo::Mesh& mesh,
                          const route::XYRouting& routing,
                          const core::StreamSet& streams, int ops,
                          core::AdmissionController::Mode mode) {
  core::AdmissionController ctrl(mesh, routing, {}, mode);
  std::vector<core::AdmissionController::Handle> handles;
  for (const core::MessageStream& s : streams) {
    const auto d = ctrl.request(s.src, s.dst, s.priority, s.period, s.length,
                                s.deadline);
    handles.push_back(d.admitted ? d.handle : -1);
  }

  util::SampleSet latency;
  std::size_t idx = 0;
  const double t0 = now_us();
  for (int op = 0; op < ops; ++op) {
    while (handles[idx] < 0) {
      idx = (idx + 1) % handles.size();
    }
    const core::MessageStream& s = streams[static_cast<StreamId>(idx)];
    const double d0 = now_us();
    ctrl.remove(handles[idx]);
    const auto d = ctrl.request(s.src, s.dst, s.priority, s.period, s.length,
                                s.deadline);
    latency.add(now_us() - d0);
    handles[idx] = d.admitted ? d.handle : -1;
    idx = (idx + 1) % handles.size();
  }
  const double elapsed_us = now_us() - t0;

  ChurnResult r;
  r.decisions_per_sec = static_cast<double>(ops) / (elapsed_us * 1e-6);
  r.p50_us = latency.percentile(50);
  r.p99_us = latency.percentile(99);
  r.mean_us = latency.mean();
  return r;
}

struct SocketMode {
  const char* name;        // console + JSON label
  bool journal = false;    // state dir + write-ahead journal
  bool fsync = true;       // fsync per group commit (when journal)
  bool group_commit = true;
  int batch_window = 0;    // 0 = one call per request; >0 = BATCH lines
                           // of this many churn steps, pipelined
  int sample_interval_ms = 0;  // >0: run the HISTORY sampler thread
  bool reports = false;    // periodic REPORT sweeps on the BATCH lines
};

struct SocketResult {
  double throughput_rps = 0;
  double p50_us = 0;       // per REQUEST call, or per pipelined round
  double p99_us = 0;
  std::uint64_t calls = 0;
  std::uint64_t errors = 0;
  double mean_commit_batch = 0;  // journal appends per group commit
  double fsync_total_us = 0;     // wall time inside fsync, summed
};

/// One REQUEST line for stream \p s.
Json request_json(const core::MessageStream& s) {
  Json rq = Json::object();
  rq.set("verb", "REQUEST");
  rq.set("src", static_cast<std::int64_t>(s.src));
  rq.set("dst", static_cast<std::int64_t>(s.dst));
  rq.set("priority", static_cast<std::int64_t>(s.priority));
  rq.set("period", s.period);
  rq.set("length", s.length);
  rq.set("deadline", s.deadline);
  return rq;
}

/// N client threads, each on its own connection, churning its own slice
/// of the stream population against a live Server.  Per-call mode sends
/// one request per round trip; batch mode wraps `batch_window` churn
/// steps in a BATCH line and pipelines two of them back to back, so the
/// server always has a full window in flight per connection.
SocketResult run_socket(topo::Mesh& mesh,
                        const route::XYRouting& routing,
                        const core::StreamSet& streams, int ops, int clients,
                        const SocketMode& mode) {
  const std::string state_dir = "/tmp/wormrt-churn-state-" +
                                std::to_string(::getpid()) + "-" + mode.name;
  svc::ServiceOptions options;
  if (mode.journal) {
    std::filesystem::remove_all(state_dir);
    options.state_dir = state_dir;
    options.journal_fsync = mode.fsync;
    options.group_commit = mode.group_commit;
  }
  options.sample_interval_ms = mode.sample_interval_ms;
  svc::Service service(mesh, routing, {}, options);
  std::string error;
  if (!service.open_state(&error)) {
    std::fprintf(stderr, "svc_churn: %s\n", error.c_str());
    return {};
  }
  char path[128];
  std::snprintf(path, sizeof path, "/tmp/wormrt-churn-%d-%s.sock",
                static_cast<int>(::getpid()), mode.name);
  svc::ServerConfig config;
  config.unix_path = path;
  config.workers = std::min(clients, 8);
  svc::Server server(service, config);
  if (!server.start(&error)) {
    std::fprintf(stderr, "svc_churn: %s\n", error.c_str());
    return {};
  }

  std::vector<std::vector<double>> latencies(static_cast<std::size_t>(clients));
  std::vector<std::uint64_t> requests_done(static_cast<std::size_t>(clients),
                                           0);
  std::vector<std::uint64_t> errors(static_cast<std::size_t>(clients), 0);
  std::vector<std::thread> threads;
  const double t0 = now_us();
  for (int t = 0; t < clients; ++t) {
    threads.emplace_back([&, t] {
      auto& my_latencies = latencies[static_cast<std::size_t>(t)];
      auto& my_errors = errors[static_cast<std::size_t>(t)];
      auto& my_requests = requests_done[static_cast<std::size_t>(t)];
      svc::Client client;
      std::string err;
      if (!client.connect_unix(path, &err)) {
        ++my_errors;
        return;
      }
      // This client's slice of the population.
      std::vector<std::pair<const core::MessageStream*, std::int64_t>> mine;
      for (std::size_t i = static_cast<std::size_t>(t); i < streams.size();
           i += static_cast<std::size_t>(clients)) {
        mine.emplace_back(&streams[static_cast<StreamId>(i)], -1);
      }
      if (mine.empty()) {
        return;
      }
      const int my_ops = ops / clients;
      std::size_t idx = 0;

      if (mode.batch_window <= 0) {
        // Per-call churn: REMOVE (when established), then REQUEST.
        for (int op = 0; op < my_ops; ++op) {
          auto& [s, handle] = mine[idx];
          idx = (idx + 1) % mine.size();
          std::string response;
          if (handle >= 0) {
            Json rm = Json::object();
            rm.set("verb", "REMOVE");
            rm.set("handle", handle);
            if (!client.call(rm.dump(), &response, &err)) {
              ++my_errors;
              return;
            }
            handle = -1;
          }
          const double c0 = now_us();
          if (!client.call(request_json(*s).dump(), &response, &err)) {
            ++my_errors;
            return;
          }
          my_latencies.push_back(now_us() - c0);
          ++my_requests;
          std::string parse_error;
          const Json reply = Json::parse(response, &parse_error);
          if (!parse_error.empty() || !reply.is_object()) {
            ++my_errors;
            continue;
          }
          const Json* h = reply.get("handle");
          if (h != nullptr) {
            handle = h->as_int();
          }
        }
        return;
      }

      // Batched + pipelined churn: each BATCH line carries up to
      // `batch_window` churn steps (REMOVE + REQUEST per established
      // slot), and a round pipelines up to two BATCH lines in one
      // coalesced write.  A round never exceeds the slice size: a
      // slot's handle is only learned from the reply, so revisiting a
      // slot with its REQUEST still in flight would re-admit the same
      // stream without the paired teardown and grow the population the
      // churn is supposed to hold fixed.  The latency sample is the
      // whole round — what a caller waiting for the LAST admission in
      // the window observes.
      const int kLinesPerRound = 2;
      const int window =
          std::min(mode.batch_window, static_cast<int>(mine.size()));
      int sent = 0;
      int line_seq = 0;
      while (sent < my_ops) {
        std::vector<std::string> lines;
        // request_slots[line][k] = slot whose REQUEST produced reply k
        // of that line's replies array (-1 for a REMOVE reply).
        std::vector<std::vector<std::int64_t>> request_slots;
        int round_steps =
            std::min(static_cast<int>(mine.size()), my_ops - sent);
        for (int line_i = 0; line_i < kLinesPerRound && round_steps > 0;
             ++line_i) {
          Json batch = Json::object();
          batch.set("verb", "BATCH");
          Json subs = Json::array();
          std::vector<std::int64_t> slots;
          for (int w = 0; w < window && round_steps > 0;
               ++w, --round_steps, ++sent) {
            auto& [s, handle] = mine[idx];
            if (handle >= 0) {
              Json rm = Json::object();
              rm.set("verb", "REMOVE");
              rm.set("handle", handle);
              subs.push_back(std::move(rm));
              slots.push_back(-1);
              handle = -1;
            }
            subs.push_back(request_json(*s));
            slots.push_back(static_cast<std::int64_t>(idx));
            idx = (idx + 1) % mine.size();
          }
          if (mode.reports && line_seq++ % 4 == 0) {
            // The measurement-harness shape: every 4th batch line also
            // sweeps a REPORT of observed latencies for the established
            // slice — the conformance-monitoring cost the obs A/B
            // quantifies, at a monitoring cadence rather than one
            // sweep per admission window.
            Json sweep = Json::array();
            for (const auto& [s, handle] : mine) {
              if (handle >= 0) {
                Json item = Json::object();
                item.set("handle", handle);
                item.set("observed_latency", 1.0);
                sweep.push_back(std::move(item));
              }
            }
            Json rep = Json::object();
            rep.set("verb", "REPORT");
            rep.set("reports", std::move(sweep));
            subs.push_back(std::move(rep));
            slots.push_back(-1);  // not a REQUEST reply
          }
          batch.set("requests", std::move(subs));
          lines.push_back(batch.dump());
          request_slots.push_back(std::move(slots));
        }

        std::vector<std::string> responses;
        const double c0 = now_us();
        if (!client.call_pipelined(lines, &responses, &err)) {
          ++my_errors;
          return;
        }
        my_latencies.push_back(now_us() - c0);
        for (std::size_t line_i = 0; line_i < responses.size(); ++line_i) {
          std::string parse_error;
          const Json reply = Json::parse(responses[line_i], &parse_error);
          if (!parse_error.empty() || !reply.is_object() ||
              reply.get("replies") == nullptr) {
            ++my_errors;
            continue;
          }
          const auto& replies = reply.get("replies")->items();
          const auto& slots = request_slots[line_i];
          if (replies.size() != slots.size()) {
            ++my_errors;
            continue;
          }
          for (std::size_t k = 0; k < replies.size(); ++k) {
            if (slots[k] < 0) {
              continue;  // a REMOVE reply
            }
            ++my_requests;
            const Json* h = replies[k].get("handle");
            if (h != nullptr) {
              mine[static_cast<std::size_t>(slots[k])].second = h->as_int();
            }
          }
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  const double elapsed_us = now_us() - t0;

  SocketResult r;
  const double appends =
      static_cast<double>(service.registry()
                              .counter("wormrt_journal_appends_total", {})
                              .value());
  const double commits =
      static_cast<double>(service.registry()
                              .counter("wormrt_journal_group_commits_total", {})
                              .value());
  r.fsync_total_us = service.registry()
                         .histogram("wormrt_journal_fsync_us", 0.0, 50000.0,
                                    1000, {})
                         .sum();
  server.stop();
  if (mode.journal) {
    std::filesystem::remove_all(state_dir);
  }

  util::SampleSet all;
  for (int t = 0; t < clients; ++t) {
    for (const double v : latencies[static_cast<std::size_t>(t)]) {
      all.add(v);
    }
    r.calls += requests_done[static_cast<std::size_t>(t)];
    r.errors += errors[static_cast<std::size_t>(t)];
  }
  if (!all.empty()) {
    r.throughput_rps = static_cast<double>(r.calls) / (elapsed_us * 1e-6);
    r.p50_us = all.percentile(50);
    r.p99_us = all.percentile(99);
  }
  if (commits > 0) {
    r.mean_commit_batch = appends / commits;
  }
  return r;
}

Json to_json(const SocketMode& mode, int clients, const SocketResult& r) {
  Json j = Json::object();
  j.set("clients", std::int64_t{clients});
  j.set("journal", mode.journal);
  j.set("fsync", mode.journal && mode.fsync);
  j.set("group_commit", mode.journal && mode.group_commit);
  j.set("batch_window", std::int64_t{mode.batch_window});
  j.set("latency_scope",
        std::string(mode.batch_window > 0 ? "per_round" : "per_call"));
  j.set("sample_interval_ms", std::int64_t{mode.sample_interval_ms});
  j.set("reports", mode.reports);
  j.set("throughput_rps", r.throughput_rps);
  j.set("p50_us", r.p50_us);
  j.set("p99_us", r.p99_us);
  j.set("calls", static_cast<std::int64_t>(r.calls));
  j.set("errors", static_cast<std::int64_t>(r.errors));
  if (r.mean_commit_batch > 0) {
    j.set("mean_commit_batch", r.mean_commit_batch);
  }
  if (mode.journal) {
    j.set("fsync_total_us", r.fsync_total_us);
  }
  return j;
}

struct ReplResult {
  double throughput_rps = 0;
  double p50_us = 0;
  double p99_us = 0;
  double lag_p50_records = 0;   // primary durable - follower durable,
  double lag_p99_records = 0;   // sampled after every mutation ack
  double lag_max_records = 0;
  double catchup_ms = 0;        // post-churn convergence to zero lag
  double promote_us = 0;        // PROMOTE verb on the follower
  double failover_us = 0;       // dead primary -> first write acked by
                                // the promoted follower
  std::uint64_t calls = 0;
  std::uint64_t errors = 0;
};

/// Primary + follower in one process over a real Unix socket: churn
/// against the primary while the follower replicates, sampling the
/// journal-record lag after every ack; then stop the primary cold and
/// time PROMOTE -> first write on the survivor.  `sync` withholds each
/// client ack until the follower reported the record durable.
ReplResult run_replication(topo::Mesh& primary_mesh, topo::Mesh& follower_mesh,
                           const route::XYRouting& routing,
                           const core::StreamSet& streams, int ops,
                           bool sync) {
  const std::string tag = std::to_string(::getpid()) +
                          (sync ? "-sync" : "-async");
  const std::string p_dir = "/tmp/wormrt-repl-bench-p-" + tag;
  const std::string f_dir = "/tmp/wormrt-repl-bench-f-" + tag;
  std::filesystem::remove_all(p_dir);
  std::filesystem::remove_all(f_dir);

  svc::ServiceOptions p_options;
  p_options.state_dir = p_dir;
  p_options.sync_replication = sync;
  svc::Service primary(primary_mesh, routing, {}, p_options);
  std::string error;
  ReplResult r;
  if (!primary.open_state(&error)) {
    std::fprintf(stderr, "svc_churn: %s\n", error.c_str());
    ++r.errors;
    return r;
  }
  char path[128];
  std::snprintf(path, sizeof path, "/tmp/wormrt-repl-bench-%s.sock",
                tag.c_str());
  svc::ServerConfig server_config;
  server_config.unix_path = path;
  svc::Server server(primary, server_config);
  if (!server.start(&error)) {
    std::fprintf(stderr, "svc_churn: %s\n", error.c_str());
    ++r.errors;
    return r;
  }

  svc::ServiceOptions f_options;
  f_options.state_dir = f_dir;
  f_options.follower = true;
  svc::Service follower(follower_mesh, routing, {}, f_options);
  if (!follower.open_state(&error)) {
    std::fprintf(stderr, "svc_churn: %s\n", error.c_str());
    ++r.errors;
    return r;
  }
  svc::ReplicaConfig replica_config;
  replica_config.endpoint = std::string("unix:") + path;
  replica_config.follower_id = "bench";
  replica_config.fingerprint = follower_mesh.fingerprint();
  svc::ReplicaSession replica(follower, replica_config);
  follower.set_promote_hook([&replica] { replica.stop(); });
  replica.start();

  svc::Client client;
  if (!client.connect_unix(path, &error)) {
    ++r.errors;
    return r;
  }
  std::vector<std::pair<const core::MessageStream*, std::int64_t>> slots;
  for (std::size_t i = 0; i < streams.size(); ++i) {
    slots.emplace_back(&streams[static_cast<StreamId>(i)], -1);
  }
  util::SampleSet latency, lag;
  std::size_t idx = 0;
  const double t0 = now_us();
  for (int op = 0; op < ops; ++op) {
    auto& [s, handle] = slots[idx];
    idx = (idx + 1) % slots.size();
    std::string response;
    if (handle >= 0) {
      Json rm = Json::object();
      rm.set("verb", "REMOVE");
      rm.set("handle", handle);
      if (!client.call(rm.dump(), &response, &error)) {
        ++r.errors;
        break;
      }
      handle = -1;
    }
    const double c0 = now_us();
    if (!client.call(request_json(*s).dump(), &response, &error)) {
      ++r.errors;
      break;
    }
    latency.add(now_us() - c0);
    ++r.calls;
    const std::uint64_t p_durable = primary.durable_lsn();
    const std::uint64_t f_durable = follower.durable_lsn();
    lag.add(p_durable > f_durable
                ? static_cast<double>(p_durable - f_durable)
                : 0.0);
    std::string parse_error;
    const Json reply = Json::parse(response, &parse_error);
    const Json* h =
        parse_error.empty() && reply.is_object() ? reply.get("handle") : nullptr;
    if (h != nullptr) {
      handle = h->as_int();
    }
  }
  const double elapsed_us = now_us() - t0;
  client.close();

  // Convergence: how long until the follower has everything.
  const double k0 = now_us();
  while (follower.durable_lsn() < primary.durable_lsn() &&
         now_us() - k0 < 5e6) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  r.catchup_ms = (now_us() - k0) / 1000.0;

  // Failover: the primary disappears mid-flight (no drain), the
  // follower is promoted, and the clock stops at its first acked write.
  server.stop();
  const double f0 = now_us();
  Json promote = Json::object();
  promote.set("verb", "PROMOTE");
  std::string parse_error;
  const Json promoted =
      Json::parse(follower.handle_line(promote.dump()), &parse_error);
  r.promote_us = now_us() - f0;
  const Json* promote_ok =
      parse_error.empty() ? promoted.get("ok") : nullptr;
  if (promote_ok == nullptr || !promote_ok->as_bool()) {
    ++r.errors;
  } else {
    const Json first = Json::parse(
        follower.handle_line(request_json(*slots[0].first).dump()),
        &parse_error);
    const Json* ok = parse_error.empty() ? first.get("ok") : nullptr;
    if (ok == nullptr || !ok->as_bool()) {
      ++r.errors;
    }
    r.failover_us = now_us() - f0;
  }
  replica.stop();

  if (!latency.empty()) {
    r.throughput_rps = static_cast<double>(r.calls) / (elapsed_us * 1e-6);
    r.p50_us = latency.percentile(50);
    r.p99_us = latency.percentile(99);
  }
  if (!lag.empty()) {
    r.lag_p50_records = lag.percentile(50);
    r.lag_p99_records = lag.percentile(99);
    r.lag_max_records = lag.percentile(100);
  }
  std::filesystem::remove_all(p_dir);
  std::filesystem::remove_all(f_dir);
  ::unlink(path);
  return r;
}

Json to_json(const ReplResult& r) {
  Json j = Json::object();
  j.set("throughput_rps", r.throughput_rps);
  j.set("p50_us", r.p50_us);
  j.set("p99_us", r.p99_us);
  j.set("lag_p50_records", r.lag_p50_records);
  j.set("lag_p99_records", r.lag_p99_records);
  j.set("lag_max_records", r.lag_max_records);
  j.set("catchup_ms", r.catchup_ms);
  j.set("promote_us", r.promote_us);
  j.set("failover_us", r.failover_us);
  j.set("calls", static_cast<std::int64_t>(r.calls));
  j.set("errors", static_cast<std::int64_t>(r.errors));
  return j;
}

Json to_json(const ChurnResult& r) {
  Json j = Json::object();
  j.set("decisions_per_sec", r.decisions_per_sec);
  j.set("mean_us", r.mean_us);
  j.set("p50_us", r.p50_us);
  j.set("p99_us", r.p99_us);
  return j;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const int n = static_cast<int>(args.get_int("streams", 60));
  const int ops = static_cast<int>(args.get_int("ops", 1500));
  const int clients = static_cast<int>(args.get_int("clients", 4));
  const int pipeline_clients =
      static_cast<int>(args.get_int("pipeline-clients", 8));
  const int batch_window = static_cast<int>(args.get_int("batch-window", 16));
  const double min_durable_speedup =
      static_cast<double>(args.get_int("min-durable-speedup", 0));
  const double min_nofsync_speedup =
      static_cast<double>(args.get_int("min-nofsync-speedup", 0));
  const double max_obs_overhead_pct =
      args.get_double("max-obs-overhead-pct", 0.0);
  const std::string out_path = args.get_string("out", "BENCH_service.json");
  const std::string obs_out_path = args.get_string("obs-out", "");
  int side = static_cast<int>(args.get_int("mesh", 16));
  if (side * side < n) {
    std::fprintf(stderr, "svc_churn: mesh %dx%d too small for %d streams\n",
                 side, side, n);
    return 2;
  }

  topo::Mesh mesh(side, side);
  const route::XYRouting routing;
  core::WorkloadParams wp;
  wp.num_streams = n;
  wp.priority_levels = 4;
  wp.seed = 42;
  core::StreamSet streams = core::generate_workload(mesh, routing, wp);
  core::adjust_periods_to_bounds(streams);

  std::printf("svc_churn: %d streams on %s, %d churn ops\n", n,
              mesh.name().c_str(), ops);

  const ChurnResult incremental = run_inprocess(
      mesh, routing, streams, ops, core::AdmissionController::Mode::kIncremental);
  std::printf("  incremental: %10.0f decisions/s  p50 %8.1f us  p99 %8.1f us\n",
              incremental.decisions_per_sec, incremental.p50_us,
              incremental.p99_us);

  // The full-recompute baseline is far slower; cap its op count so the
  // bench stays quick, the percentiles are still well-populated.
  const int full_ops = std::min(ops, 200);
  const ChurnResult full = run_inprocess(
      mesh, routing, streams, full_ops,
      core::AdmissionController::Mode::kFullRecompute);
  std::printf("  full:        %10.0f decisions/s  p50 %8.1f us  p99 %8.1f us\n",
              full.decisions_per_sec, full.p50_us, full.p99_us);

  const double speedup = full.decisions_per_sec > 0
                             ? incremental.decisions_per_sec /
                                   full.decisions_per_sec
                             : 0;
  std::printf("  incremental vs full speedup: %.2fx\n", speedup);

  const SocketMode kPlain = {"socket", false, true, true, 0};
  const SocketMode kDurableSerial = {"durable-serial", true, true, false, 0};
  const SocketMode kDurablePipelined = {"durable-pipelined", true, true, true,
                                        batch_window};
  const SocketMode kNoFsyncPipelined = {"nofsync-pipelined", true, false, true,
                                        batch_window};

  const auto report = [&](const char* label, int mode_clients,
                          const SocketResult& r) {
    std::printf("  %-24s (%2d clients): %8.0f req/s  p50 %8.1f us  "
                "p99 %8.1f us  (%llu calls, %llu errors",
                label, mode_clients, r.throughput_rps, r.p50_us, r.p99_us,
                static_cast<unsigned long long>(r.calls),
                static_cast<unsigned long long>(r.errors));
    if (r.mean_commit_batch > 0) {
      std::printf(", %.1f appends/commit, %.0f ms in fsync",
                  r.mean_commit_batch, r.fsync_total_us / 1000.0);
    }
    std::printf(")\n");
  };

  const SocketResult socket =
      run_socket(mesh, routing, streams, ops, clients, kPlain);
  report("socket", clients, socket);
  const SocketResult durable_serial =
      run_socket(mesh, routing, streams, ops, clients, kDurableSerial);
  report("socket durable serial", clients, durable_serial);
  const SocketResult durable_pipelined = run_socket(
      mesh, routing, streams, ops, pipeline_clients, kDurablePipelined);
  report("socket durable pipelined", pipeline_clients, durable_pipelined);
  const SocketResult nofsync_pipelined = run_socket(
      mesh, routing, streams, ops, pipeline_clients, kNoFsyncPipelined);
  report("socket nofsync pipelined", pipeline_clients, nofsync_pipelined);

  // Observability A/B: durable-pipelined with the HISTORY sampler
  // ticking fast (25ms vs the daemon's 1s default) AND a REPORT sweep
  // per BATCH line, against re-runs of the plain mode.  Interleaved
  // best-of-N damps scheduler noise: the claim is about the monitoring
  // machinery, not about which run won the CPU lottery.
  SocketMode obs_mode = kDurablePipelined;
  obs_mode.name = "obs-pipelined";
  obs_mode.sample_interval_ms = 25;
  obs_mode.reports = true;
  // Runs at `ops` finish in well under 100ms, where a single slow
  // fsync swings throughput by several percent; the A/B rounds run 4x
  // longer so the jitter amortizes below the floor being enforced.
  const int obs_ops = ops * 4;
  SocketResult obs_best, base_best;
  for (int round = 0; round < 3; ++round) {
    const SocketResult obs = run_socket(mesh, routing, streams, obs_ops,
                                        pipeline_clients, obs_mode);
    if (obs.throughput_rps > obs_best.throughput_rps) {
      obs_best = obs;
    }
    const SocketResult base = run_socket(mesh, routing, streams, obs_ops,
                                         pipeline_clients, kDurablePipelined);
    if (base.throughput_rps > base_best.throughput_rps) {
      base_best = base;
    }
  }
  report("socket obs pipelined", pipeline_clients, obs_best);
  const double obs_overhead_pct =
      base_best.throughput_rps > 0
          ? std::max(0.0, (1.0 - obs_best.throughput_rps /
                                     base_best.throughput_rps) *
                              100.0)
          : 0.0;
  std::printf("  sampler+conformance overhead vs durable pipelined: "
              "%.2f%%\n",
              obs_overhead_pct);

  // Replication: a follower replays the primary's journal while the
  // churn runs; then the primary dies and the survivor takes over.  The
  // follower mutates its own fabric instance during replay, so it gets
  // a private mesh.
  topo::Mesh follower_mesh(side, side);
  const int repl_ops = std::min(ops, 600);
  const ReplResult repl_async = run_replication(
      mesh, follower_mesh, routing, streams, repl_ops, /*sync=*/false);
  std::printf("  replication async:  %8.0f req/s  p50 %8.1f us  p99 %8.1f us"
              "  lag p99 %.0f rec  failover %.0f us\n",
              repl_async.throughput_rps, repl_async.p50_us, repl_async.p99_us,
              repl_async.lag_p99_records, repl_async.failover_us);
  topo::Mesh sync_primary_mesh(side, side);
  topo::Mesh sync_follower_mesh(side, side);
  const ReplResult repl_sync =
      run_replication(sync_primary_mesh, sync_follower_mesh, routing, streams,
                      repl_ops, /*sync=*/true);
  std::printf("  replication sync:   %8.0f req/s  p50 %8.1f us  p99 %8.1f us"
              "  lag p99 %.0f rec  failover %.0f us\n",
              repl_sync.throughput_rps, repl_sync.p50_us, repl_sync.p99_us,
              repl_sync.lag_p99_records, repl_sync.failover_us);

  const double durable_speedup =
      durable_serial.throughput_rps > 0
          ? durable_pipelined.throughput_rps / durable_serial.throughput_rps
          : 0;
  const double nofsync_speedup =
      durable_serial.throughput_rps > 0
          ? nofsync_pipelined.throughput_rps / durable_serial.throughput_rps
          : 0;
  std::printf("  group commit + pipelining vs durable serial: %.2fx "
              "(fsync on), %.2fx (fsync off)\n",
              durable_speedup, nofsync_speedup);

  Json doc = Json::object();
  doc.set("bench", "svc_churn");
  doc.set("streams", std::int64_t{n});
  doc.set("mesh", mesh.name());
  doc.set("ops", std::int64_t{ops});
  doc.set("incremental", to_json(incremental));
  doc.set("full_recompute", to_json(full));
  doc.set("incremental_vs_full_speedup", speedup);
  doc.set("socket", to_json(kPlain, clients, socket));
  doc.set("socket_durable_serial",
          to_json(kDurableSerial, clients, durable_serial));
  doc.set("socket_durable_pipelined",
          to_json(kDurablePipelined, pipeline_clients, durable_pipelined));
  doc.set("socket_pipelined",
          to_json(kNoFsyncPipelined, pipeline_clients, nofsync_pipelined));
  doc.set("speedup_durable_pipelined_vs_serial", durable_speedup);
  doc.set("speedup_nofsync_pipelined_vs_serial", nofsync_speedup);
  doc.set("socket_obs_pipelined",
          to_json(obs_mode, pipeline_clients, obs_best));
  doc.set("obs_overhead_pct", obs_overhead_pct);
  Json repl = Json::object();
  repl.set("ops", std::int64_t{repl_ops});
  repl.set("async", to_json(repl_async));
  repl.set("sync", to_json(repl_sync));
  doc.set("replication", std::move(repl));

  std::ofstream out(out_path);
  out << doc.dump() << "\n";
  std::printf("wrote %s\n", out_path.c_str());

  if (!obs_out_path.empty()) {
    Json obs_doc = Json::object();
    obs_doc.set("bench", "svc_churn_obs");
    obs_doc.set("streams", std::int64_t{n});
    obs_doc.set("mesh", mesh.name());
    obs_doc.set("ops", std::int64_t{ops});
    obs_doc.set("sample_interval_ms",
                std::int64_t{obs_mode.sample_interval_ms});
    obs_doc.set("baseline_durable_pipelined",
                to_json(kDurablePipelined, pipeline_clients, base_best));
    obs_doc.set("obs_durable_pipelined",
                to_json(obs_mode, pipeline_clients, obs_best));
    obs_doc.set("obs_overhead_pct", obs_overhead_pct);
    obs_doc.set("max_obs_overhead_pct", max_obs_overhead_pct);
    std::ofstream obs_out(obs_out_path);
    obs_out << obs_doc.dump() << "\n";
    std::printf("wrote %s\n", obs_out_path.c_str());
  }

  const std::uint64_t total_errors = socket.errors + durable_serial.errors +
                                     durable_pipelined.errors +
                                     nofsync_pipelined.errors +
                                     repl_async.errors + repl_sync.errors;
  if (total_errors != 0) {
    return 1;
  }
  if (min_durable_speedup > 0 && durable_speedup < min_durable_speedup) {
    std::fprintf(stderr,
                 "svc_churn: durable pipelined speedup %.2fx below the "
                 "%.0fx floor\n",
                 durable_speedup, min_durable_speedup);
    return 1;
  }
  if (min_nofsync_speedup > 0 && nofsync_speedup < min_nofsync_speedup) {
    std::fprintf(stderr,
                 "svc_churn: nofsync pipelined speedup %.2fx below the "
                 "%.0fx floor\n",
                 nofsync_speedup, min_nofsync_speedup);
    return 1;
  }
  if (max_obs_overhead_pct > 0 && obs_overhead_pct > max_obs_overhead_pct) {
    std::fprintf(stderr,
                 "svc_churn: sampler+conformance overhead %.2f%% above "
                 "the %.2f%% ceiling\n",
                 obs_overhead_pct, max_obs_overhead_pct);
    return 1;
  }
  return 0;
}
