// wormrtd load generator: measures the admission-control service under
// churn and emits BENCH_service.json.
//
//   ./bench/svc_churn [--streams 60] [--ops 1500] [--clients 4]
//                     [--mesh 16x16 (cols equal rows: --mesh 16)]
//                     [--out BENCH_service.json]
//
// Three measurements:
//   1. in-process churn with the incremental engine (decision latency
//      percentiles and decisions/s),
//   2. the same operation sequence under full recompute per decision
//      (the pre-incremental baseline; the ratio is the speedup),
//   3. end-to-end over a real Unix-domain socket: N client threads
//      driving REQUEST/REMOVE churn against a Server, with
//      client-observed latencies and aggregate throughput.

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/admission.hpp"
#include "core/workload.hpp"
#include "route/dor.hpp"
#include "svc/json.hpp"
#include "svc/server.hpp"
#include "svc/service.hpp"
#include "topo/mesh.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

#include <unistd.h>

namespace {

using namespace wormrt;
using svc::Json;

double now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct ChurnResult {
  double decisions_per_sec = 0;
  double p50_us = 0;
  double p99_us = 0;
  double mean_us = 0;
};

/// Establishes the feasible population, then runs `ops` single-channel
/// teardown + re-establishment cycles, timing each decision.
ChurnResult run_inprocess(const topo::Mesh& mesh,
                          const route::XYRouting& routing,
                          const core::StreamSet& streams, int ops,
                          core::AdmissionController::Mode mode) {
  core::AdmissionController ctrl(mesh, routing, {}, mode);
  std::vector<core::AdmissionController::Handle> handles;
  for (const core::MessageStream& s : streams) {
    const auto d = ctrl.request(s.src, s.dst, s.priority, s.period, s.length,
                                s.deadline);
    handles.push_back(d.admitted ? d.handle : -1);
  }

  util::SampleSet latency;
  std::size_t idx = 0;
  const double t0 = now_us();
  for (int op = 0; op < ops; ++op) {
    while (handles[idx] < 0) {
      idx = (idx + 1) % handles.size();
    }
    const core::MessageStream& s = streams[static_cast<StreamId>(idx)];
    const double d0 = now_us();
    ctrl.remove(handles[idx]);
    const auto d = ctrl.request(s.src, s.dst, s.priority, s.period, s.length,
                                s.deadline);
    latency.add(now_us() - d0);
    handles[idx] = d.admitted ? d.handle : -1;
    idx = (idx + 1) % handles.size();
  }
  const double elapsed_us = now_us() - t0;

  ChurnResult r;
  r.decisions_per_sec = static_cast<double>(ops) / (elapsed_us * 1e-6);
  r.p50_us = latency.percentile(50);
  r.p99_us = latency.percentile(99);
  r.mean_us = latency.mean();
  return r;
}

struct SocketResult {
  double throughput_rps = 0;
  double p50_us = 0;
  double p99_us = 0;
  std::uint64_t calls = 0;
  std::uint64_t errors = 0;
};

/// N client threads, each on its own connection, churning its own slice
/// of the stream population against a live Server.
SocketResult run_socket(const topo::Mesh& mesh,
                        const route::XYRouting& routing,
                        const core::StreamSet& streams, int ops, int clients) {
  svc::Service service(mesh, routing);
  char path[128];
  std::snprintf(path, sizeof path, "/tmp/wormrt-churn-%d.sock",
                static_cast<int>(::getpid()));
  svc::ServerConfig config;
  config.unix_path = path;
  config.workers = clients;
  svc::Server server(service, config);
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "svc_churn: %s\n", error.c_str());
    return {};
  }

  std::vector<std::vector<double>> latencies(static_cast<std::size_t>(clients));
  std::vector<std::uint64_t> errors(static_cast<std::size_t>(clients), 0);
  std::vector<std::thread> threads;
  const double t0 = now_us();
  for (int t = 0; t < clients; ++t) {
    threads.emplace_back([&, t] {
      svc::Client client;
      std::string err;
      if (!client.connect_unix(path, &err)) {
        ++errors[static_cast<std::size_t>(t)];
        return;
      }
      // This client's slice of the population.
      std::vector<std::pair<const core::MessageStream*, std::int64_t>> mine;
      for (std::size_t i = static_cast<std::size_t>(t); i < streams.size();
           i += static_cast<std::size_t>(clients)) {
        mine.emplace_back(&streams[static_cast<StreamId>(i)], -1);
      }
      if (mine.empty()) {
        return;
      }
      const int my_ops = ops / clients;
      std::size_t idx = 0;
      for (int op = 0; op < my_ops; ++op) {
        auto& [s, handle] = mine[idx];
        idx = (idx + 1) % mine.size();
        std::string response;
        if (handle >= 0) {
          Json rm = Json::object();
          rm.set("verb", "REMOVE");
          rm.set("handle", handle);
          if (!client.call(rm.dump(), &response, &err)) {
            ++errors[static_cast<std::size_t>(t)];
            return;
          }
          handle = -1;
        }
        Json rq = Json::object();
        rq.set("verb", "REQUEST");
        rq.set("src", static_cast<std::int64_t>(s->src));
        rq.set("dst", static_cast<std::int64_t>(s->dst));
        rq.set("priority", static_cast<std::int64_t>(s->priority));
        rq.set("period", s->period);
        rq.set("length", s->length);
        rq.set("deadline", s->deadline);
        const double c0 = now_us();
        if (!client.call(rq.dump(), &response, &err)) {
          ++errors[static_cast<std::size_t>(t)];
          return;
        }
        latencies[static_cast<std::size_t>(t)].push_back(now_us() - c0);
        std::string parse_error;
        const Json reply = Json::parse(response, &parse_error);
        if (!parse_error.empty() || !reply.is_object()) {
          ++errors[static_cast<std::size_t>(t)];
          continue;
        }
        const Json* h = reply.get("handle");
        if (h != nullptr) {
          handle = h->as_int();
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  const double elapsed_us = now_us() - t0;
  server.stop();

  util::SampleSet all;
  std::uint64_t total_errors = 0;
  for (int t = 0; t < clients; ++t) {
    for (const double v : latencies[static_cast<std::size_t>(t)]) {
      all.add(v);
    }
    total_errors += errors[static_cast<std::size_t>(t)];
  }

  SocketResult r;
  r.calls = all.count();
  r.errors = total_errors;
  if (!all.empty()) {
    r.throughput_rps = static_cast<double>(all.count()) / (elapsed_us * 1e-6);
    r.p50_us = all.percentile(50);
    r.p99_us = all.percentile(99);
  }
  return r;
}

Json to_json(const ChurnResult& r) {
  Json j = Json::object();
  j.set("decisions_per_sec", r.decisions_per_sec);
  j.set("mean_us", r.mean_us);
  j.set("p50_us", r.p50_us);
  j.set("p99_us", r.p99_us);
  return j;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const int n = static_cast<int>(args.get_int("streams", 60));
  const int ops = static_cast<int>(args.get_int("ops", 1500));
  const int clients = static_cast<int>(args.get_int("clients", 4));
  const std::string out_path = args.get_string("out", "BENCH_service.json");
  int side = static_cast<int>(args.get_int("mesh", 16));
  if (side * side < n) {
    std::fprintf(stderr, "svc_churn: mesh %dx%d too small for %d streams\n",
                 side, side, n);
    return 2;
  }

  const topo::Mesh mesh(side, side);
  const route::XYRouting routing;
  core::WorkloadParams wp;
  wp.num_streams = n;
  wp.priority_levels = 4;
  wp.seed = 42;
  core::StreamSet streams = core::generate_workload(mesh, routing, wp);
  core::adjust_periods_to_bounds(streams);

  std::printf("svc_churn: %d streams on %s, %d churn ops\n", n,
              mesh.name().c_str(), ops);

  const ChurnResult incremental = run_inprocess(
      mesh, routing, streams, ops, core::AdmissionController::Mode::kIncremental);
  std::printf("  incremental: %10.0f decisions/s  p50 %8.1f us  p99 %8.1f us\n",
              incremental.decisions_per_sec, incremental.p50_us,
              incremental.p99_us);

  // The full-recompute baseline is far slower; cap its op count so the
  // bench stays quick, the percentiles are still well-populated.
  const int full_ops = std::min(ops, 200);
  const ChurnResult full = run_inprocess(
      mesh, routing, streams, full_ops,
      core::AdmissionController::Mode::kFullRecompute);
  std::printf("  full:        %10.0f decisions/s  p50 %8.1f us  p99 %8.1f us\n",
              full.decisions_per_sec, full.p50_us, full.p99_us);

  const double speedup = full.decisions_per_sec > 0
                             ? incremental.decisions_per_sec /
                                   full.decisions_per_sec
                             : 0;
  std::printf("  incremental vs full speedup: %.2fx\n", speedup);

  const SocketResult socket =
      run_socket(mesh, routing, streams, ops, clients);
  std::printf("  socket (%d clients): %8.0f req/s  p50 %8.1f us  p99 %8.1f us"
              "  (%llu calls, %llu errors)\n",
              clients, socket.throughput_rps, socket.p50_us, socket.p99_us,
              static_cast<unsigned long long>(socket.calls),
              static_cast<unsigned long long>(socket.errors));

  Json doc = Json::object();
  doc.set("bench", "svc_churn");
  doc.set("streams", std::int64_t{n});
  doc.set("mesh", mesh.name());
  doc.set("ops", std::int64_t{ops});
  doc.set("incremental", to_json(incremental));
  doc.set("full_recompute", to_json(full));
  doc.set("incremental_vs_full_speedup", speedup);
  Json sock = Json::object();
  sock.set("clients", std::int64_t{clients});
  sock.set("throughput_rps", socket.throughput_rps);
  sock.set("p50_us", socket.p50_us);
  sock.set("p99_us", socket.p99_us);
  sock.set("calls", static_cast<std::int64_t>(socket.calls));
  sock.set("errors", static_cast<std::int64_t>(socket.errors));
  doc.set("socket", std::move(sock));

  std::ofstream out(out_path);
  out << doc.dump() << "\n";
  std::printf("wrote %s\n", out_path.c_str());
  return socket.errors == 0 ? 0 : 1;
}
