// Ablation B — window semantics of Generate_Init_Diagram.  The paper
// drops any demand an instance could not serve inside its own period
// window; the carry-over variant backlogs it instead (strictly more
// pessimistic, closer to what a real queue does).  This bench compares
// the resulting bounds and how many streams each variant can still
// guarantee within their deadlines.

#include <cstdio>

#include "core/delay_bound.hpp"
#include "core/workload.hpp"
#include "route/dor.hpp"
#include "topo/mesh.hpp"
#include "util/table.hpp"

namespace {

using namespace wormrt;
using namespace wormrt::core;

void run_config(const char* label, int streams_n, int levels,
                std::uint64_t seed, util::Table& table) {
  topo::Mesh mesh(10, 10);
  const route::XYRouting xy;
  WorkloadParams wp;
  wp.num_streams = streams_n;
  wp.priority_levels = levels;
  wp.seed = seed;
  StreamSet streams = generate_workload(mesh, xy, wp);
  adjust_periods_to_bounds(streams);

  const BlockingAnalysis blocking(streams);
  AnalysisConfig drop;
  drop.horizon = HorizonPolicy::kExtended;
  AnalysisConfig carry = drop;
  carry.carry_over = true;  // disables relaxation implicitly
  const DelayBoundCalculator calc_drop(streams, blocking, drop);
  const DelayBoundCalculator calc_carry(streams, blocking, carry);

  double sum_drop = 0, sum_carry = 0;
  int both = 0, carry_lost = 0;
  for (const auto& s : streams) {
    const Time u_drop = calc_drop.calc(s.id).bound;
    const Time u_carry = calc_carry.calc(s.id).bound;
    if (u_drop != kNoTime && u_carry == kNoTime) {
      // Backlogged interference never leaves room: only the window drop
      // made the stream look boundable.
      ++carry_lost;
      continue;
    }
    if (u_drop == kNoTime || u_carry == kNoTime) {
      continue;
    }
    ++both;
    sum_drop += static_cast<double>(u_drop);
    sum_carry += static_cast<double>(u_carry);
  }
  table.row()
      .cell(label)
      .cell(static_cast<std::int64_t>(both))
      .cell(both ? sum_drop / both : 0.0, 1)
      .cell(both ? sum_carry / both : 0.0, 1)
      .cell(static_cast<std::int64_t>(carry_lost));
}

}  // namespace

int main() {
  std::printf(
      "Ablation — window-drop (paper) vs carry-over demand in "
      "Generate_Init_Diagram\n"
      "carry-over bounds are never smaller; 'unbounded w/ carry' counts "
      "streams whose bound only exists because the paper's diagram drops "
      "backlogged interference\n\n");
  util::Table table({"workload", "bounded both", "U drop (paper)",
                     "U carry-over", "unbounded w/ carry"});
  run_config("20 streams / 1 level", 20, 1, 1, table);
  run_config("20 streams / 4 levels", 20, 4, 1, table);
  run_config("60 streams / 15 levels", 60, 15, 1, table);
  std::fputs(table.to_ascii().c_str(), stdout);
  return 0;
}
