// Extension — priority assignment.  The paper takes the P_i as given;
// a deployment has to derive them from deadlines.  This bench draws
// random stream sets with mixed deadlines and compares how often each
// assigner yields a feasible set under the paper's bound: random
// levels (the paper's tables' setup), rate-monotonic,
// deadline-monotonic, and the Audsley-style lowest-level-first search.

#include <cstdio>

#include "core/feasibility.hpp"
#include "core/priority_assign.hpp"
#include "core/workload.hpp"
#include "route/dor.hpp"
#include "topo/mesh.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace wormrt;
using namespace wormrt::core;

// Draws a stream set whose deadlines are a random multiple of the
// period (deadline-constrained traffic, unlike the tables' D = T).
StreamSet draw(const topo::Mesh& mesh, std::uint64_t seed) {
  const route::XYRouting xy;
  WorkloadParams wp;
  wp.num_streams = 12;
  wp.priority_levels = 1;  // priorities get overwritten by the assigners
  wp.seed = seed;
  wp.period_min = 60;
  wp.period_max = 200;
  wp.length_min = 5;
  wp.length_max = 30;
  StreamSet set = generate_workload(mesh, xy, wp);
  util::Rng rng(seed ^ 0xdeadbeefull);
  for (StreamId i = 0; i < static_cast<StreamId>(set.size()); ++i) {
    auto& s = set.mutable_stream(i);
    s.deadline = std::max<Time>(s.latency + rng.uniform_int(0, 15),
                                s.period * rng.uniform_int(20, 70) / 100);
  }
  return set;
}

bool feasible(const StreamSet& set) {
  return determine_feasibility(set).feasible;
}

}  // namespace

int main() {
  const topo::Mesh mesh(10, 10);
  constexpr int kTrials = 40;
  int random_ok = 0, rm_ok = 0, dm_ok = 0, audsley_ok = 0;
  long long audsley_calls = 0;
  for (int t = 0; t < kTrials; ++t) {
    const auto seed = static_cast<std::uint64_t>(t + 1);
    {
      StreamSet set = draw(mesh, seed);
      util::Rng rng(seed * 31);
      for (StreamId i = 0; i < static_cast<StreamId>(set.size()); ++i) {
        set.mutable_stream(i).priority =
            static_cast<Priority>(rng.uniform_int(0, 3));
      }
      random_ok += feasible(set) ? 1 : 0;
    }
    {
      StreamSet set = draw(mesh, seed);
      assign_priorities_rate_monotonic(set);
      rm_ok += feasible(set) ? 1 : 0;
    }
    {
      StreamSet set = draw(mesh, seed);
      assign_priorities_deadline_monotonic(set);
      dm_ok += feasible(set) ? 1 : 0;
    }
    {
      StreamSet set = draw(mesh, seed);
      const AudsleyResult r = assign_priorities_audsley(set);
      audsley_calls += r.analysis_calls;
      // The deliverable is the final assignment (the search result, or
      // its deadline-monotonic fallback when the search dead-ends).
      audsley_ok += feasible(set) ? 1 : 0;
    }
  }

  std::printf("Extension — priority assignment vs feasibility "
              "(12 deadline-constrained streams, %d random draws)\n\n",
              kTrials);
  wormrt::util::Table table({"assigner", "feasible sets", "rate"});
  const auto row = [&](const char* name, int ok) {
    table.row().cell(name).cell(static_cast<std::int64_t>(ok)).cell(
        static_cast<double>(ok) / kTrials, 2);
  };
  row("random 4 levels (tables' setup)", random_ok);
  row("rate-monotonic", rm_ok);
  row("deadline-monotonic", dm_ok);
  row("Audsley lowest-level-first", audsley_ok);
  std::fputs(table.to_ascii().c_str(), stdout);
  std::printf("\nAudsley search cost: %.1f bound computations per set "
              "(n^2 worst case = 144).\n",
              static_cast<double>(audsley_calls) / kTrials);
  std::printf("Expected shape: Audsley >= deadline-monotonic >= "
              "rate-monotonic >> random.\n");
  return 0;
}
