// Extension — spatial traffic patterns.  The paper's destinations are
// uniformly distributed; real workloads concentrate.  This bench runs
// the pipeline under the standard multicomputer patterns and reports how
// bound tightness and the adjusted load respond — hotspot traffic forces
// the period adjustment to throttle far harder than uniform.

#include <cstdio>

#include "common/experiment.hpp"
#include "util/table.hpp"

int main() {
  using namespace wormrt;
  std::printf("Extension — traffic patterns on the 10x10 mesh "
              "(20 streams, 5 levels)\n\n");
  util::Table table({"pattern", "top ratio", "bottom ratio", "silent",
                     "capped", "violations"});
  const core::TrafficPattern patterns[] = {
      core::TrafficPattern::kUniform, core::TrafficPattern::kTranspose,
      core::TrafficPattern::kBitReversal, core::TrafficPattern::kHotspot,
      core::TrafficPattern::kNearestNeighbor};
  for (const auto pattern : patterns) {
    bench::ExperimentParams params;
    params.num_streams = 20;
    params.priority_levels = 5;
    params.replications = 3;
    params.pattern = pattern;
    const bench::ExperimentResult r = bench::run_experiment(params);
    double top = 0, bottom = 0;
    if (!r.rows.empty()) {
      top = r.rows.front().ratio_mean;
      bottom = r.rows.back().ratio_mean;
    }
    table.row()
        .cell(core::to_string(pattern))
        .cell(top, 3)
        .cell(bottom, 3)
        .cell(static_cast<std::int64_t>(r.silent_streams))
        .cell(static_cast<std::int64_t>(r.capped_bounds))
        .cell(r.bound_violations);
  }
  std::fputs(table.to_ascii().c_str(), stdout);
  std::printf(
      "\nExpected shape: nearest-neighbour traffic (short disjoint "
      "paths) keeps bounds tight everywhere; hotspot traffic saturates "
      "the hot node's ejection port and the stability guard throttles "
      "the converging streams (more silent/capped entries).\n");
  return 0;
}
