// Ablation C — switching policy.  The same Table-3 workload simulated
// under the four arbitration policies, reporting each priority level's
// actual average delay and the bound violations.  Shows (i) why priority
// handling is needed at all (FCFS wrecks high-priority delays), (ii) how
// Li's probabilistic VC scheme sits between FCFS and preemption, and
// (iii) the residual gap between the strict one-VC-per-priority hardware
// and the work-conserving idealisation the analysis charges.

#include <cstdio>

#include "common/experiment.hpp"
#include "util/table.hpp"

namespace {

using namespace wormrt;

}  // namespace

int main() {
  std::printf(
      "Ablation — arbitration policy on the Table-3 workload "
      "(20 streams, 4 levels)\n\n");
  util::Table table({"policy", "P3 actual", "P2 actual", "P1 actual",
                     "P0 actual", "violations"});
  const sim::ArbPolicy policies[] = {
      sim::ArbPolicy::kIdealPreemptive, sim::ArbPolicy::kPriorityPreemptive,
      sim::ArbPolicy::kLiVc, sim::ArbPolicy::kNonPreemptiveFcfs};
  for (const auto policy : policies) {
    bench::ExperimentParams params;
    params.num_streams = 20;
    params.priority_levels = 4;
    params.replications = 3;
    params.policy = policy;
    const bench::ExperimentResult r = bench::run_experiment(params);
    double actual[4] = {0, 0, 0, 0};
    for (const auto& row : r.rows) {
      if (row.priority >= 0 && row.priority < 4) {
        actual[row.priority] = row.actual_mean;
      }
    }
    table.row()
        .cell(sim::to_string(policy))
        .cell(actual[3], 1)
        .cell(actual[2], 1)
        .cell(actual[1], 1)
        .cell(actual[0], 1)
        .cell(static_cast<std::int64_t>(r.bound_violations));
  }
  std::fputs(table.to_ascii().c_str(), stdout);
  std::printf(
      "\nExpected shape: ideal/vc preemption keeps high-priority delays "
      "near contention-free; FCFS equalises (inverts) them; Li improves "
      "admission odds but not channel bandwidth.  Violations under "
      "non-ideal policies quantify blocking the analysis does not "
      "charge.\n");
  return 0;
}
