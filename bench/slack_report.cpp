// Measured slack distribution on the paper's Table 1-5 workloads: how
// much headroom separates the flit-accurate worst observed latency of
// every stream from its analytic bound U_i?
//
//   ./bench/slack_report [--replications 5] [--depth 2] [--seed 1]
//
// Pipeline per table: the Section 5 workload draw (10x10 mesh, X-Y
// routing), the paper's period adjustment, then a flitsim run whose
// per-stream worst generation-to-delivery delays are fed through
// obs::ConformanceMonitor exactly the way wormrtd's REPORT verb feeds
// it — so this bench is also an end-to-end check that the monitor
// counts zero violations on sound populations (exit 1 otherwise).
//
// Two slack views per stream:
//   analytic  (T_i - U_i) / T_i  — admission headroom after adjustment,
//   measured  (U_i - worst) / U_i — the pessimism the bound carries over
//                                   the exact flit-level worst case.
// The measured column is the empirical groundwork for tighter analysis
// backends (ROADMAP item 1): it is the gap a less pessimistic bound
// could reclaim.  Distributions are reported as min/p10/p50/p90/max
// across streams x replications (EXPERIMENTS.md "measured slack").

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/delay_bound.hpp"
#include "core/workload.hpp"
#include "flitsim/flit_sim.hpp"
#include "obs/conformance.hpp"
#include "obs/metrics.hpp"
#include "route/dor.hpp"
#include "topo/mesh.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace wormrt {
namespace {

struct TableConfig {
  const char* name;
  int streams;
  int levels;
};

constexpr TableConfig kTables[] = {
    {"Table 1 (1x20)", 20, 1},  {"Table 2 (1x60)", 60, 1},
    {"Table 3 (4x20)", 20, 4},  {"Table 4 (5x20)", 20, 5},
    {"Table 5 (15x60)", 60, 15},
};

double pct(std::vector<double>& v, double q) {
  std::sort(v.begin(), v.end());
  const auto n = v.size();
  auto rank = static_cast<std::size_t>(q * static_cast<double>(n - 1) + 0.5);
  return v[std::min(rank, n - 1)];
}

}  // namespace

int run(int argc, char** argv) {
  const util::Args args(argc, argv);
  const int replications = static_cast<int>(args.get_int("replications", 5));
  const int depth = static_cast<int>(args.get_int("depth", 2));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  topo::Mesh mesh(10, 10);
  const route::XYRouting xy;

  std::printf("slack_report: 10x10 mesh, X-Y routing, flit-accurate "
              "backend (depth %d), %d replications\n",
              depth, replications);
  util::Table table({"workload", "streams", "flit-valid", "analytic p50",
                     "measured min", "p10", "p50", "p90", "max"});

  obs::Registry registry;
  obs::ConformanceMonitor monitor(registry);
  std::int64_t handle = 0;
  bool failed = false;

  for (const TableConfig& cfg : kTables) {
    std::vector<double> analytic;   // (T - U) / T, flit-valid streams
    std::vector<double> measured;   // (U - worst) / U, flit-valid streams
    int measured_streams = 0;
    int valid_streams = 0;

    for (int rep = 0; rep < replications; ++rep) {
      core::WorkloadParams wp;
      wp.num_streams = cfg.streams;
      wp.priority_levels = cfg.levels;
      wp.seed = seed + static_cast<std::uint64_t>(rep) * 0x9e37u;
      core::StreamSet streams = core::generate_workload(mesh, xy, wp);
      const core::AdjustResult adjusted =
          core::adjust_periods_to_bounds(streams);

      flitsim::FlitSimConfig fc;
      fc.duration = 30000;
      fc.warmup = 2000;
      fc.vc_buffer_depth = depth;
      flitsim::FlitSimulator sim(mesh, streams, fc);
      const flitsim::FlitSimResult fr = sim.run();

      for (const auto& s : streams) {
        const Time bound = adjusted.bounds[static_cast<std::size_t>(s.id)];
        const Time worst =
            fr.per_stream[static_cast<std::size_t>(s.id)].worst;
        // The monitor's validity domain: the bound survives credit flow
        // control only with a round-trip of slack (DESIGN.md §13).
        const bool flit_valid = bound != kNoTime && bound + 2 <= s.period;
        valid_streams += flit_valid ? 1 : 0;
        if (worst == kNoTime) {
          continue;  // silent stream: period adjusted past the window
        }
        const auto outcome = monitor.report(
            handle++, static_cast<double>(worst),
            static_cast<double>(bound), static_cast<double>(s.period),
            flit_valid);
        if (outcome.violation) {
          std::fprintf(stderr,
                       "%s rep %d stream %d: worst %lld EXCEEDS bound "
                       "%lld (T %lld)\n",
                       cfg.name, rep, static_cast<int>(s.id),
                       static_cast<long long>(worst),
                       static_cast<long long>(bound),
                       static_cast<long long>(s.period));
          failed = true;
        }
        if (!flit_valid) {
          continue;  // no claim outside the validity domain
        }
        ++measured_streams;
        analytic.push_back(static_cast<double>(s.period - bound) /
                           static_cast<double>(s.period));
        measured.push_back(static_cast<double>(bound - worst) /
                           static_cast<double>(bound));
      }
    }

    if (measured.empty()) {
      continue;
    }
    table.row()
        .cell(cfg.name)
        .cell(static_cast<std::int64_t>(measured_streams))
        .cell(static_cast<std::int64_t>(valid_streams))
        .cell(pct(analytic, 0.5), 3)
        .cell(pct(measured, 0.0), 3)
        .cell(pct(measured, 0.1), 3)
        .cell(pct(measured, 0.5), 3)
        .cell(pct(measured, 0.9), 3)
        .cell(pct(measured, 1.0), 3);
  }

  std::printf("%s", table.to_ascii().c_str());
  std::printf("slack = (U - worst_observed) / U on flit-valid streams; "
              "conformance violations: %llu\n",
              static_cast<unsigned long long>(monitor.total_violations()));
  if (failed || monitor.total_violations() != 0) {
    std::fprintf(stderr, "slack_report: bound violations detected\n");
    return 1;
  }
  return 0;
}

}  // namespace wormrt

int main(int argc, char** argv) { return wormrt::run(argc, argv); }
