// Table 2 of the paper: one priority level, 60 message streams.
// Expected shape: the single-level bound collapses ("the ratio is
// extremely exacerbated") — much smaller ratios than Table 1.

#include "common/table_main.hpp"

int main(int argc, char** argv) {
  wormrt::bench::ExperimentParams params;
  params.num_streams = 60;
  params.priority_levels = 1;
  return wormrt::bench::run_table_bench(
      argc, argv, params, "Table 2 — 1 priority level, 60 message streams");
}
