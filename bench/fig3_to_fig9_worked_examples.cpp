// Regenerates the paper's algorithm illustrations:
//  * Fig. 4 — timing diagram of a direct-blocking HP set (U = 26),
//  * Figs. 5/6 — the same set with a blocking chain, relaxed (U = 22),
//  * Figs. 7/8/9 — the Section 4.4 worked example: HP sets, the
//    blocking dependency graph, initial and final diagrams of HP_4,
//    and all five delay upper bounds (paper: 7, 8, 26, 20, 33).

#include <cstdio>

#include "core/delay_bound.hpp"
#include "core/feasibility.hpp"
#include "core/paper_example.hpp"

namespace {

using namespace wormrt;
using namespace wormrt::core;

void fig4_and_fig6() {
  std::printf("=== Fig. 4 — direct blocking (M1 T=10 C=2, M2 T=15 C=3, "
              "M3 T=13 C=4; L of the analysed message = 6) ===\n");
  const std::vector<RowSpec> rows = {
      RowSpec{1, 3, 10, 2}, RowSpec{2, 2, 15, 3}, RowSpec{3, 1, 13, 4}};
  TimingDiagram direct(rows, /*horizon=*/40, /*carry_over=*/false);
  std::fputs(direct.render().c_str(), stdout);
  std::printf("U = %lld  (paper: 26)\n\n",
              static_cast<long long>(direct.accumulate_free(6)));

  std::printf("=== Figs. 5/6 — blocking chain M1 -> M2 -> M3 -> M4, "
              "indirect elements relaxed ===\n");
  TimingDiagram indirect(rows, 40, false);
  indirect.relax_indirect_row(/*M2 row=*/1, {/*via M3=*/2});
  indirect.relax_indirect_row(/*M1 row=*/0, {/*via M2=*/1});
  std::fputs(indirect.render().c_str(), stdout);
  std::printf("U = %lld  (paper: 22)\n\n",
              static_cast<long long>(indirect.accumulate_free(6)));
}

const char* mode_name(BlockMode mode) {
  return mode == BlockMode::kDirect ? "DIRECT" : "INDIRECT";
}

void section44() {
  std::printf("=== Section 4.4 worked example (10x10 mesh, X-Y routing) "
              "===\n");
  const auto ex = paper::section44();
  for (const auto& s : ex.streams) {
    const auto src = ex.mesh->coord_of(s.src);
    const auto dst = ex.mesh->coord_of(s.dst);
    std::printf("M_%d = (%s, %s, P=%d, T=%lld, C=%lld, D=%lld, L=%lld)\n",
                s.id, topo::to_string(src).c_str(),
                topo::to_string(dst).c_str(), s.priority,
                static_cast<long long>(s.period),
                static_cast<long long>(s.length),
                static_cast<long long>(s.deadline),
                static_cast<long long>(s.latency));
  }

  const BlockingAnalysis blocking(ex.streams);
  std::printf("\nHP sets (Fig. 3-style construction):\n");
  for (StreamId j = 0; j < static_cast<StreamId>(ex.streams.size()); ++j) {
    std::printf("HP_%d = {", j);
    const auto& hp = blocking.hp_set(j);
    for (std::size_t i = 0; i < hp.size(); ++i) {
      std::printf("%s(M_%d, %s", i ? ", " : " ", hp[i].id,
                  mode_name(hp[i].mode));
      if (!hp[i].intermediates.empty()) {
        std::printf(", via");
        for (const StreamId m : hp[i].intermediates) {
          std::printf(" M_%d", m);
        }
      }
      std::printf(")");
    }
    std::printf(" }\n");
  }

  std::printf("\nBlocking dependency graph of HP_4 (Fig. 8):\n");
  const Bdg bdg(blocking, 4, blocking.hp_set(4));
  for (std::size_t u = 0; u < bdg.num_nodes(); ++u) {
    for (std::size_t v = 0; v < bdg.num_nodes(); ++v) {
      if (bdg.edge(u, v)) {
        std::printf("  M_%d -> M_%d\n", bdg.stream_of(u), bdg.stream_of(v));
      }
    }
  }

  const DelayBoundCalculator calc(ex.streams, blocking);
  std::printf("\nInitial timing diagram of HP_4 (Fig. 7; '#' allocated, "
              "'.' preempted, bottom row F = free):\n");
  std::fputs(
      calc.build_diagram(4, blocking.hp_set(4), 50, /*relax=*/false)
          .render()
          .c_str(),
      stdout);
  std::printf("\nFinal timing diagram of HP_4 after Modify_Diagram "
              "(Fig. 9):\n");
  std::fputs(
      calc.build_diagram(4, blocking.hp_set(4), 50, /*relax=*/true)
          .render()
          .c_str(),
      stdout);

  std::printf("\nDelay upper bounds:\n");
  std::printf("  M_i   ours   paper\n");
  for (StreamId j = 0; j < 5; ++j) {
    std::printf("  M_%d   %4lld   %4lld%s\n", j,
                static_cast<long long>(calc.calc(j).bound),
                static_cast<long long>(paper::kPaperBounds[j]),
                j == 3 ? "   (paper's HP_3 omits M_0/M_2; with its "
                         "published HP_3 we also get 20)"
                       : "");
  }
  std::printf("  M_3 with the paper's published HP_3: %lld\n",
              static_cast<long long>(
                  calc.calc_with_hp(3, paper::paper_hp3()).bound));

  const FeasibilityReport report = determine_feasibility(ex.streams);
  std::printf("\nDetermine-Feasibility: %s (paper: success)\n",
              report.feasible ? "success" : "fail");
}

}  // namespace

int main() {
  fig4_and_fig6();
  section44();
  return 0;
}
