// Table 1 of the paper: one priority level, 20 message streams.
// Expected shape: without priority discrimination every stream's bound
// must assume blocking by every overlapping stream, so the ratio of the
// actual average delay to the bound stays below ~0.5.

#include "common/table_main.hpp"

int main(int argc, char** argv) {
  wormrt::bench::ExperimentParams params;
  params.num_streams = 20;
  params.priority_levels = 1;
  return wormrt::bench::run_table_bench(
      argc, argv, params, "Table 1 — 1 priority level, 20 message streams");
}
