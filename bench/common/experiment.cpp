#include "common/experiment.hpp"

#include <algorithm>
#include <map>
#include <memory>

#include "core/delay_bound.hpp"
#include "flitsim/flit_sim.hpp"
#include "route/dor.hpp"
#include "sim/simulator.hpp"
#include "topo/hypercube.hpp"
#include "topo/mesh.hpp"
#include "topo/torus.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace wormrt::bench {

const char* to_string(TopoKind kind) {
  switch (kind) {
    case TopoKind::kMesh: return "mesh";
    case TopoKind::kTorus: return "torus";
    case TopoKind::kHypercube: return "hypercube";
  }
  return "?";
}

const char* to_string(SimBackend backend) {
  switch (backend) {
    case SimBackend::kIdeal: return "ideal";
    case SimBackend::kFlit: return "flit-accurate";
  }
  return "?";
}

namespace {

std::unique_ptr<topo::Topology> build_topology(const ExperimentParams& p) {
  switch (p.topo) {
    case TopoKind::kMesh:
      return std::make_unique<topo::Mesh>(p.mesh_width, p.mesh_height);
    case TopoKind::kTorus:
      return std::make_unique<topo::Torus>(p.mesh_width, p.mesh_height);
    case TopoKind::kHypercube:
      return std::make_unique<topo::Hypercube>(p.hypercube_order);
  }
  return nullptr;
}

}  // namespace

ExperimentResult run_experiment(const ExperimentParams& params) {
  ExperimentResult result;

  struct LevelAccum {
    int streams = 0;
    double ratio_sum = 0.0;
    double ratio_min = 1e300;
    double ratio_max = -1e300;
    double actual_sum = 0.0;
    double bound_sum = 0.0;
  };

  /// Everything one replication contributes, kept in a per-replication
  /// slot so the replications can run in parallel and still be merged in
  /// replication order — the result is identical for any thread count.
  struct RepOutcome {
    std::map<Priority, LevelAccum, std::greater<>> levels;
    int silent_streams = 0;
    int capped_bounds = 0;
    std::int64_t bound_violations = 0;
    std::int64_t messages_measured = 0;
    int adjust_iterations = 0;
    std::int64_t retransmissions = 0;
    std::int64_t flits_dropped = 0;
  };

  const std::unique_ptr<topo::Topology> network = build_topology(params);
  const topo::Topology& mesh = *network;
  const route::XYRouting xy;  // dimension-order everywhere (e-cube on cubes)

  const auto reps = static_cast<std::size_t>(params.replications);
  std::vector<RepOutcome> outcomes(reps);
  util::parallel_for(reps, params.analysis.num_threads, [&](std::size_t rep) {
    RepOutcome& out = outcomes[rep];
    core::WorkloadParams wp;
    wp.num_streams = params.num_streams;
    wp.priority_levels = params.priority_levels;
    wp.seed = params.seed + static_cast<std::uint64_t>(rep) * 0x9e37u;
    wp.pattern = params.pattern;
    core::StreamSet streams = generate_workload(mesh, xy, wp);

    // "If the calculated U_i is larger than T_i, we increased T_i."
    const core::AdjustResult adjusted =
        adjust_periods_to_bounds(streams, params.analysis,
                                 /*max_iterations=*/8,
                                 params.stability_utilization);
    out.adjust_iterations = adjusted.iterations;
    for (const Time u : adjusted.bounds) {
      if (u >= params.analysis.horizon_cap) {
        ++out.capped_bounds;
      }
    }

    const auto count_arrival = [&](StreamId stream, Time delay) {
      ++out.messages_measured;
      if (delay > adjusted.bounds[static_cast<std::size_t>(stream)]) {
        ++out.bound_violations;
      }
    };
    const auto count_stream = [&](const core::MessageStream& s,
                                  std::int64_t completed, double actual) {
      if (completed == 0) {
        ++out.silent_streams;
        return;
      }
      const auto bound = static_cast<double>(
          adjusted.bounds[static_cast<std::size_t>(s.id)]);
      const double ratio = actual / bound;
      auto& acc = out.levels[s.priority];
      ++acc.streams;
      acc.ratio_sum += ratio;
      acc.ratio_min = std::min(acc.ratio_min, ratio);
      acc.ratio_max = std::max(acc.ratio_max, ratio);
      acc.actual_sum += actual;
      acc.bound_sum += bound;
    };

    if (params.backend == SimBackend::kFlit) {
      flitsim::FlitSimConfig fc;
      fc.duration = params.sim_duration;
      fc.warmup = params.sim_warmup;
      fc.vc_buffer_depth = params.vc_buffer_depth;
      fc.record_arrivals = true;
      flitsim::FlitSimulator sim(mesh, streams, fc);
      const flitsim::FlitSimResult fr = sim.run();
      for (const auto& a : fr.arrivals) {
        count_arrival(a.stream, a.delivered - a.generated);
      }
      for (const auto& s : streams) {
        const auto& st = fr.per_stream[static_cast<std::size_t>(s.id)];
        count_stream(s, st.completed, st.latency.mean());
      }
    } else {
      sim::SimConfig sc;
      sc.duration = params.sim_duration;
      sc.warmup = params.sim_warmup;
      sc.policy = params.policy;
      sc.num_vcs = params.num_vcs_override > 0
                       ? params.num_vcs_override
                       : std::max(params.priority_levels, 1);
      sc.vc_buffer_depth = params.vc_buffer_depth;
      sc.record_arrivals = true;
      sim::Simulator sim(mesh, streams, sc);
      const sim::SimResult sr = sim.run();
      out.retransmissions = sr.retransmissions;
      out.flits_dropped = sr.flits_dropped;
      for (const auto& a : sr.arrivals) {
        count_arrival(a.stream, a.arrived - a.generated);
      }
      for (const auto& s : streams) {
        const auto& st = sr.per_stream[static_cast<std::size_t>(s.id)];
        count_stream(s, st.completed, st.latency.mean());
      }
    }
  });

  std::map<Priority, LevelAccum, std::greater<>> levels;
  for (const RepOutcome& out : outcomes) {
    result.silent_streams += out.silent_streams;
    result.capped_bounds += out.capped_bounds;
    result.bound_violations += out.bound_violations;
    result.messages_measured += out.messages_measured;
    result.adjust_iterations =
        std::max(result.adjust_iterations, out.adjust_iterations);
    result.retransmissions += out.retransmissions;
    result.flits_dropped += out.flits_dropped;
    for (const auto& [priority, acc] : out.levels) {
      auto& merged = levels[priority];
      merged.streams += acc.streams;
      merged.ratio_sum += acc.ratio_sum;
      merged.ratio_min = std::min(merged.ratio_min, acc.ratio_min);
      merged.ratio_max = std::max(merged.ratio_max, acc.ratio_max);
      merged.actual_sum += acc.actual_sum;
      merged.bound_sum += acc.bound_sum;
    }
  }

  for (const auto& [priority, acc] : levels) {
    PriorityLevelRow row;
    row.priority = priority;
    row.streams = acc.streams;
    row.ratio_mean = acc.ratio_sum / acc.streams;
    row.ratio_min = acc.ratio_min;
    row.ratio_max = acc.ratio_max;
    row.actual_mean = acc.actual_sum / acc.streams;
    row.bound_mean = acc.bound_sum / acc.streams;
    result.rows.push_back(row);
  }
  return result;
}

std::string format_table(const ExperimentParams& params,
                         const ExperimentResult& result,
                         const std::string& title) {
  std::string out = title + "\n";
  const std::string shape =
      params.topo == TopoKind::kHypercube
          ? std::to_string(params.hypercube_order) + "-cube"
          : std::to_string(params.mesh_width) + "x" +
                std::to_string(params.mesh_height) + " " +
                to_string(params.topo);
  out += "setup: " + shape + ", dimension-order routing, " +
         std::to_string(params.num_streams) + " streams, " +
         std::to_string(params.priority_levels) + " priority level(s), " +
         std::to_string(params.replications) + " replication(s), " +
         std::string(core::to_string(params.pattern)) + " traffic, " +
         (params.backend == SimBackend::kFlit
              ? "flit-accurate backend (depth " +
                    std::to_string(params.vc_buffer_depth) + ")"
              : "policy " + std::string(sim::to_string(params.policy))) +
         "\n";
  util::Table table({"P", "streams", "ratio(actual/U)", "min", "max",
                     "avg actual", "avg U"});
  for (const auto& row : result.rows) {
    table.row()
        .cell(static_cast<std::int64_t>(row.priority))
        .cell(static_cast<std::int64_t>(row.streams))
        .cell(row.ratio_mean, 3)
        .cell(row.ratio_min, 3)
        .cell(row.ratio_max, 3)
        .cell(row.actual_mean, 1)
        .cell(row.bound_mean, 1);
  }
  out += table.to_ascii();
  out += "messages measured: " + std::to_string(result.messages_measured) +
         ", bound violations: " + std::to_string(result.bound_violations) +
         ", silent streams: " + std::to_string(result.silent_streams) +
         ", capped bounds: " + std::to_string(result.capped_bounds) + "\n";
  return out;
}

}  // namespace wormrt::bench
