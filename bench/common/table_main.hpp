#pragma once

#include <cstdio>
#include <string>

#include "common/experiment.hpp"
#include "util/cli.hpp"

/// \file table_main.hpp
/// Shared main() body of the table benches: applies command-line
/// overrides (--streams, --levels, --seed, --reps, --duration) to the
/// table's canonical parameters, runs the pipeline, prints the table.

namespace wormrt::bench {

inline int run_table_bench(int argc, char** argv, ExperimentParams params,
                           const std::string& title) {
  const util::Args args(argc, argv);
  params.num_streams = static_cast<int>(
      args.get_int("streams", params.num_streams));
  params.priority_levels = static_cast<int>(
      args.get_int("levels", params.priority_levels));
  params.seed = static_cast<std::uint64_t>(
      args.get_int("seed", static_cast<std::int64_t>(params.seed)));
  params.replications = static_cast<int>(
      args.get_int("reps", params.replications));
  params.sim_duration = args.get_int("duration", params.sim_duration);
  params.vc_buffer_depth = static_cast<int>(
      args.get_int("depth", params.vc_buffer_depth));
  const bool ports = args.get_bool("ports", true);
  params.analysis.ejection_port_overlap = ports;
  params.analysis.injection_port_overlap = ports;
  const std::string policy = args.get_string("policy", "ideal");
  if (policy == "ideal") {
    params.policy = sim::ArbPolicy::kIdealPreemptive;
  } else if (policy == "vc") {
    params.policy = sim::ArbPolicy::kPriorityPreemptive;
  } else if (policy == "li") {
    params.policy = sim::ArbPolicy::kLiVc;
  } else if (policy == "fcfs") {
    params.policy = sim::ArbPolicy::kNonPreemptiveFcfs;
  } else {
    std::fprintf(stderr, "unknown --policy '%s' (ideal|vc|li|fcfs)\n",
                 policy.c_str());
    return 2;
  }

  const ExperimentResult result = run_experiment(params);
  std::fputs(format_table(params, result, title).c_str(), stdout);
  return 0;
}

}  // namespace wormrt::bench
