#pragma once

#include <string>
#include <vector>

#include "core/workload.hpp"
#include "sim/sim_config.hpp"

/// \file experiment.hpp
/// The Section 5 evaluation pipeline shared by the table benches:
///   1. draw a random stream set on a 10x10 mesh (C ~ U[1,40],
///      T ~ U[40,90], uniform priorities, X-Y routing);
///   2. raise periods to the computed bounds where U_i > T_i;
///   3. compute the final delay upper bound U_i of every stream;
///   4. simulate 30000 flit times (2000 warm-up) under flit-level
///      preemptive priority switching with one VC per priority level;
///   5. report, per priority level, the ratio of the actual average
///      transmission delay to the bound (the paper's table metric).

namespace wormrt::bench {

/// Interconnection network of the experiment ("a topology, such as a
/// hypercube or a mesh", Section 2).
enum class TopoKind { kMesh, kTorus, kHypercube };

const char* to_string(TopoKind kind);

/// Which simulation backend measures the workload.
enum class SimBackend {
  /// sim::Simulator — idealized preemptive channels (infinite effective
  /// buffering, no flow control); `policy` and `num_vcs_override` apply.
  kIdeal,
  /// flitsim::FlitSimulator — event-driven flit-accurate router: real
  /// per-VC buffers of `vc_buffer_depth`, credit flow control, single
  /// injection/ejection ports, per-stream lanes (DESIGN.md §12).
  /// `policy` and `num_vcs_override` are ignored.
  kFlit,
};

const char* to_string(SimBackend backend);

struct ExperimentParams {
  int num_streams = 20;
  int priority_levels = 1;
  std::uint64_t seed = 1;
  /// Independent replications (fresh workload per replication); the
  /// paper's tables show one draw, we average a few for stability.
  int replications = 3;
  TopoKind topo = TopoKind::kMesh;
  int mesh_width = 10;    ///< mesh/torus dimension 0
  int mesh_height = 10;   ///< mesh/torus dimension 1
  int hypercube_order = 6;
  core::TrafficPattern pattern = core::TrafficPattern::kUniform;
  SimBackend backend = SimBackend::kIdeal;
  Time sim_duration = 30000;
  Time sim_warmup = 2000;
  /// Default is the work-conserving per-stream-lane idealisation whose
  /// interference accounting matches Cal_U; pass
  /// kPriorityPreemptive for the strict one-VC-per-priority hardware
  /// model (same-priority VC sharing then adds blocking the analysis
  /// does not charge — see EXPERIMENTS.md and the policy ablation).
  sim::ArbPolicy policy = sim::ArbPolicy::kIdealPreemptive;
  /// Flit buffer depth per VC (1 = canonical wormhole).  Bounds hold at
  /// depth 1 as long as the analysis models the node ports as shared
  /// resources (AnalysisConfig::*_port_overlap); without port modelling
  /// the depth-1 pipeline coupling breaks the bound by orders of
  /// magnitude — see the buffer-depth ablation and EXPERIMENTS.md.
  int vc_buffer_depth = 1;
  /// Virtual channels per physical channel; 0 means "one per priority
  /// level" (the paper's provisioning).  Song's throttle-and-preempt
  /// policy is the reason to set it lower.
  int num_vcs_override = 0;
  core::AnalysisConfig analysis;
  /// Channel-utilization ceiling enforced by the period adjustment; <= 0
  /// disables the stability guard (the paper's literal pipeline).
  double stability_utilization = 1.0;
};

/// Aggregated over all streams of one priority level across replications.
struct PriorityLevelRow {
  Priority priority = 0;
  int streams = 0;            ///< streams observed at this level
  double ratio_mean = 0.0;    ///< mean of (actual avg delay / U)
  double ratio_min = 0.0;
  double ratio_max = 0.0;
  double actual_mean = 0.0;   ///< mean actual average delay (flit times)
  double bound_mean = 0.0;    ///< mean U
};

struct ExperimentResult {
  std::vector<PriorityLevelRow> rows;  ///< one per priority level, high first
  /// Streams that injected no message inside the measurement window
  /// (period adjusted beyond the simulation length) — excluded from rows.
  int silent_streams = 0;
  /// Streams whose bound hit the horizon cap.
  int capped_bounds = 0;
  /// Simulated messages whose delay exceeded the stream's bound
  /// (soundness check; expected 0).
  std::int64_t bound_violations = 0;
  std::int64_t messages_measured = 0;
  int adjust_iterations = 0;
  /// Throttle-and-preempt only: wasted flits and whole-message
  /// retransmissions across all replications.
  std::int64_t retransmissions = 0;
  std::int64_t flits_dropped = 0;
};

/// Runs the full pipeline.
ExperimentResult run_experiment(const ExperimentParams& params);

/// Renders the result in the paper's "P : ratio" style plus our extra
/// columns, as an aligned ASCII table.
std::string format_table(const ExperimentParams& params,
                         const ExperimentResult& result,
                         const std::string& title);

}  // namespace wormrt::bench
