# Empty dependencies file for radar_pipeline.
# This may be replaced when dependencies are built.
