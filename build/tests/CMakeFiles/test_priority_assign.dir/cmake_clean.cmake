file(REMOVE_RECURSE
  "CMakeFiles/test_priority_assign.dir/core/test_priority_assign.cpp.o"
  "CMakeFiles/test_priority_assign.dir/core/test_priority_assign.cpp.o.d"
  "test_priority_assign"
  "test_priority_assign.pdb"
  "test_priority_assign[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_priority_assign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
