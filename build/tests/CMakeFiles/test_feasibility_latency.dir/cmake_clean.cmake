file(REMOVE_RECURSE
  "CMakeFiles/test_feasibility_latency.dir/core/test_feasibility_latency.cpp.o"
  "CMakeFiles/test_feasibility_latency.dir/core/test_feasibility_latency.cpp.o.d"
  "test_feasibility_latency"
  "test_feasibility_latency.pdb"
  "test_feasibility_latency[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_feasibility_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
