# Empty dependencies file for test_feasibility_latency.
# This may be replaced when dependencies are built.
