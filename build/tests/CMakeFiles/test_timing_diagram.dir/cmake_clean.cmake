file(REMOVE_RECURSE
  "CMakeFiles/test_timing_diagram.dir/core/test_timing_diagram.cpp.o"
  "CMakeFiles/test_timing_diagram.dir/core/test_timing_diagram.cpp.o.d"
  "test_timing_diagram"
  "test_timing_diagram.pdb"
  "test_timing_diagram[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_timing_diagram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
