# Empty dependencies file for test_timing_diagram.
# This may be replaced when dependencies are built.
