# Empty dependencies file for test_rm_bound.
# This may be replaced when dependencies are built.
