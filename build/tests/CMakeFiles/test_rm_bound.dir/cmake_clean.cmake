file(REMOVE_RECURSE
  "CMakeFiles/test_rm_bound.dir/baselines/test_rm_bound.cpp.o"
  "CMakeFiles/test_rm_bound.dir/baselines/test_rm_bound.cpp.o.d"
  "test_rm_bound"
  "test_rm_bound.pdb"
  "test_rm_bound[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rm_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
