# Empty compiler generated dependencies file for test_experiment_pipeline.
# This may be replaced when dependencies are built.
