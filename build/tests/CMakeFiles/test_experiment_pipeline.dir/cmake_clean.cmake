file(REMOVE_RECURSE
  "CMakeFiles/test_experiment_pipeline.dir/integration/test_experiment_pipeline.cpp.o"
  "CMakeFiles/test_experiment_pipeline.dir/integration/test_experiment_pipeline.cpp.o.d"
  "test_experiment_pipeline"
  "test_experiment_pipeline.pdb"
  "test_experiment_pipeline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_experiment_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
