# Empty compiler generated dependencies file for test_bound_vs_sim.
# This may be replaced when dependencies are built.
