file(REMOVE_RECURSE
  "CMakeFiles/test_bound_vs_sim.dir/integration/test_bound_vs_sim.cpp.o"
  "CMakeFiles/test_bound_vs_sim.dir/integration/test_bound_vs_sim.cpp.o.d"
  "test_bound_vs_sim"
  "test_bound_vs_sim.pdb"
  "test_bound_vs_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bound_vs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
