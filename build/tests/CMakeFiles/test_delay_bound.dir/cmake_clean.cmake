file(REMOVE_RECURSE
  "CMakeFiles/test_delay_bound.dir/core/test_delay_bound.cpp.o"
  "CMakeFiles/test_delay_bound.dir/core/test_delay_bound.cpp.o.d"
  "test_delay_bound"
  "test_delay_bound.pdb"
  "test_delay_bound[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_delay_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
