# Empty dependencies file for test_delay_bound.
# This may be replaced when dependencies are built.
