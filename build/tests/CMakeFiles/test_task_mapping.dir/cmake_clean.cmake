file(REMOVE_RECURSE
  "CMakeFiles/test_task_mapping.dir/core/test_task_mapping.cpp.o"
  "CMakeFiles/test_task_mapping.dir/core/test_task_mapping.cpp.o.d"
  "test_task_mapping"
  "test_task_mapping.pdb"
  "test_task_mapping[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_task_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
