# Empty dependencies file for test_hpset.
# This may be replaced when dependencies are built.
