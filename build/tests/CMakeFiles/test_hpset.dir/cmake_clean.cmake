file(REMOVE_RECURSE
  "CMakeFiles/test_hpset.dir/core/test_hpset.cpp.o"
  "CMakeFiles/test_hpset.dir/core/test_hpset.cpp.o.d"
  "test_hpset"
  "test_hpset.pdb"
  "test_hpset[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hpset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
