file(REMOVE_RECURSE
  "CMakeFiles/test_stream_io.dir/core/test_stream_io.cpp.o"
  "CMakeFiles/test_stream_io.dir/core/test_stream_io.cpp.o.d"
  "test_stream_io"
  "test_stream_io.pdb"
  "test_stream_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stream_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
