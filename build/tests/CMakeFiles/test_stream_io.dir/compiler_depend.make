# Empty compiler generated dependencies file for test_stream_io.
# This may be replaced when dependencies are built.
