# Empty compiler generated dependencies file for test_throttle_preempt.
# This may be replaced when dependencies are built.
