file(REMOVE_RECURSE
  "CMakeFiles/test_throttle_preempt.dir/sim/test_throttle_preempt.cpp.o"
  "CMakeFiles/test_throttle_preempt.dir/sim/test_throttle_preempt.cpp.o.d"
  "test_throttle_preempt"
  "test_throttle_preempt.pdb"
  "test_throttle_preempt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_throttle_preempt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
