# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_table_cli[1]_include.cmake")
include("/root/repo/build/tests/test_topologies[1]_include.cmake")
include("/root/repo/build/tests/test_routing[1]_include.cmake")
include("/root/repo/build/tests/test_hpset[1]_include.cmake")
include("/root/repo/build/tests/test_timing_diagram[1]_include.cmake")
include("/root/repo/build/tests/test_delay_bound[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_feasibility_latency[1]_include.cmake")
include("/root/repo/build/tests/test_paper[1]_include.cmake")
include("/root/repo/build/tests/test_simulator[1]_include.cmake")
include("/root/repo/build/tests/test_policies[1]_include.cmake")
include("/root/repo/build/tests/test_rm_bound[1]_include.cmake")
include("/root/repo/build/tests/test_bound_vs_sim[1]_include.cmake")
include("/root/repo/build/tests/test_priority_assign[1]_include.cmake")
include("/root/repo/build/tests/test_admission[1]_include.cmake")
include("/root/repo/build/tests/test_traffic_patterns[1]_include.cmake")
include("/root/repo/build/tests/test_other_topologies[1]_include.cmake")
include("/root/repo/build/tests/test_stream_io[1]_include.cmake")
include("/root/repo/build/tests/test_throttle_preempt[1]_include.cmake")
include("/root/repo/build/tests/test_experiment_pipeline[1]_include.cmake")
include("/root/repo/build/tests/test_task_mapping[1]_include.cmake")
