file(REMOVE_RECURSE
  "libwormrt_util.a"
)
