file(REMOVE_RECURSE
  "CMakeFiles/wormrt_util.dir/cli.cpp.o"
  "CMakeFiles/wormrt_util.dir/cli.cpp.o.d"
  "CMakeFiles/wormrt_util.dir/histogram.cpp.o"
  "CMakeFiles/wormrt_util.dir/histogram.cpp.o.d"
  "CMakeFiles/wormrt_util.dir/log.cpp.o"
  "CMakeFiles/wormrt_util.dir/log.cpp.o.d"
  "CMakeFiles/wormrt_util.dir/rng.cpp.o"
  "CMakeFiles/wormrt_util.dir/rng.cpp.o.d"
  "CMakeFiles/wormrt_util.dir/stats.cpp.o"
  "CMakeFiles/wormrt_util.dir/stats.cpp.o.d"
  "CMakeFiles/wormrt_util.dir/table.cpp.o"
  "CMakeFiles/wormrt_util.dir/table.cpp.o.d"
  "libwormrt_util.a"
  "libwormrt_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wormrt_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
