# Empty dependencies file for wormrt_util.
# This may be replaced when dependencies are built.
