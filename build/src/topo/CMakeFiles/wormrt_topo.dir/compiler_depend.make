# Empty compiler generated dependencies file for wormrt_topo.
# This may be replaced when dependencies are built.
