file(REMOVE_RECURSE
  "libwormrt_topo.a"
)
