file(REMOVE_RECURSE
  "CMakeFiles/wormrt_topo.dir/channel_graph.cpp.o"
  "CMakeFiles/wormrt_topo.dir/channel_graph.cpp.o.d"
  "CMakeFiles/wormrt_topo.dir/hypercube.cpp.o"
  "CMakeFiles/wormrt_topo.dir/hypercube.cpp.o.d"
  "CMakeFiles/wormrt_topo.dir/mesh.cpp.o"
  "CMakeFiles/wormrt_topo.dir/mesh.cpp.o.d"
  "CMakeFiles/wormrt_topo.dir/topology.cpp.o"
  "CMakeFiles/wormrt_topo.dir/topology.cpp.o.d"
  "CMakeFiles/wormrt_topo.dir/torus.cpp.o"
  "CMakeFiles/wormrt_topo.dir/torus.cpp.o.d"
  "libwormrt_topo.a"
  "libwormrt_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wormrt_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
