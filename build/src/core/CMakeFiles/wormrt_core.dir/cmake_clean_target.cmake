file(REMOVE_RECURSE
  "libwormrt_core.a"
)
