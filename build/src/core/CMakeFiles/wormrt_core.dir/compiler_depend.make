# Empty compiler generated dependencies file for wormrt_core.
# This may be replaced when dependencies are built.
