file(REMOVE_RECURSE
  "CMakeFiles/wormrt_core.dir/admission.cpp.o"
  "CMakeFiles/wormrt_core.dir/admission.cpp.o.d"
  "CMakeFiles/wormrt_core.dir/bdg.cpp.o"
  "CMakeFiles/wormrt_core.dir/bdg.cpp.o.d"
  "CMakeFiles/wormrt_core.dir/delay_bound.cpp.o"
  "CMakeFiles/wormrt_core.dir/delay_bound.cpp.o.d"
  "CMakeFiles/wormrt_core.dir/feasibility.cpp.o"
  "CMakeFiles/wormrt_core.dir/feasibility.cpp.o.d"
  "CMakeFiles/wormrt_core.dir/hpset.cpp.o"
  "CMakeFiles/wormrt_core.dir/hpset.cpp.o.d"
  "CMakeFiles/wormrt_core.dir/latency.cpp.o"
  "CMakeFiles/wormrt_core.dir/latency.cpp.o.d"
  "CMakeFiles/wormrt_core.dir/message_stream.cpp.o"
  "CMakeFiles/wormrt_core.dir/message_stream.cpp.o.d"
  "CMakeFiles/wormrt_core.dir/paper_example.cpp.o"
  "CMakeFiles/wormrt_core.dir/paper_example.cpp.o.d"
  "CMakeFiles/wormrt_core.dir/priority_assign.cpp.o"
  "CMakeFiles/wormrt_core.dir/priority_assign.cpp.o.d"
  "CMakeFiles/wormrt_core.dir/stream_io.cpp.o"
  "CMakeFiles/wormrt_core.dir/stream_io.cpp.o.d"
  "CMakeFiles/wormrt_core.dir/task_mapping.cpp.o"
  "CMakeFiles/wormrt_core.dir/task_mapping.cpp.o.d"
  "CMakeFiles/wormrt_core.dir/timing_diagram.cpp.o"
  "CMakeFiles/wormrt_core.dir/timing_diagram.cpp.o.d"
  "CMakeFiles/wormrt_core.dir/workload.cpp.o"
  "CMakeFiles/wormrt_core.dir/workload.cpp.o.d"
  "libwormrt_core.a"
  "libwormrt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wormrt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
