
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/admission.cpp" "src/core/CMakeFiles/wormrt_core.dir/admission.cpp.o" "gcc" "src/core/CMakeFiles/wormrt_core.dir/admission.cpp.o.d"
  "/root/repo/src/core/bdg.cpp" "src/core/CMakeFiles/wormrt_core.dir/bdg.cpp.o" "gcc" "src/core/CMakeFiles/wormrt_core.dir/bdg.cpp.o.d"
  "/root/repo/src/core/delay_bound.cpp" "src/core/CMakeFiles/wormrt_core.dir/delay_bound.cpp.o" "gcc" "src/core/CMakeFiles/wormrt_core.dir/delay_bound.cpp.o.d"
  "/root/repo/src/core/feasibility.cpp" "src/core/CMakeFiles/wormrt_core.dir/feasibility.cpp.o" "gcc" "src/core/CMakeFiles/wormrt_core.dir/feasibility.cpp.o.d"
  "/root/repo/src/core/hpset.cpp" "src/core/CMakeFiles/wormrt_core.dir/hpset.cpp.o" "gcc" "src/core/CMakeFiles/wormrt_core.dir/hpset.cpp.o.d"
  "/root/repo/src/core/latency.cpp" "src/core/CMakeFiles/wormrt_core.dir/latency.cpp.o" "gcc" "src/core/CMakeFiles/wormrt_core.dir/latency.cpp.o.d"
  "/root/repo/src/core/message_stream.cpp" "src/core/CMakeFiles/wormrt_core.dir/message_stream.cpp.o" "gcc" "src/core/CMakeFiles/wormrt_core.dir/message_stream.cpp.o.d"
  "/root/repo/src/core/paper_example.cpp" "src/core/CMakeFiles/wormrt_core.dir/paper_example.cpp.o" "gcc" "src/core/CMakeFiles/wormrt_core.dir/paper_example.cpp.o.d"
  "/root/repo/src/core/priority_assign.cpp" "src/core/CMakeFiles/wormrt_core.dir/priority_assign.cpp.o" "gcc" "src/core/CMakeFiles/wormrt_core.dir/priority_assign.cpp.o.d"
  "/root/repo/src/core/stream_io.cpp" "src/core/CMakeFiles/wormrt_core.dir/stream_io.cpp.o" "gcc" "src/core/CMakeFiles/wormrt_core.dir/stream_io.cpp.o.d"
  "/root/repo/src/core/task_mapping.cpp" "src/core/CMakeFiles/wormrt_core.dir/task_mapping.cpp.o" "gcc" "src/core/CMakeFiles/wormrt_core.dir/task_mapping.cpp.o.d"
  "/root/repo/src/core/timing_diagram.cpp" "src/core/CMakeFiles/wormrt_core.dir/timing_diagram.cpp.o" "gcc" "src/core/CMakeFiles/wormrt_core.dir/timing_diagram.cpp.o.d"
  "/root/repo/src/core/workload.cpp" "src/core/CMakeFiles/wormrt_core.dir/workload.cpp.o" "gcc" "src/core/CMakeFiles/wormrt_core.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/route/CMakeFiles/wormrt_route.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/wormrt_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wormrt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
