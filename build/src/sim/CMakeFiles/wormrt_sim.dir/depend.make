# Empty dependencies file for wormrt_sim.
# This may be replaced when dependencies are built.
