file(REMOVE_RECURSE
  "libwormrt_sim.a"
)
