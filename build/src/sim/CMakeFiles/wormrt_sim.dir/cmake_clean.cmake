file(REMOVE_RECURSE
  "CMakeFiles/wormrt_sim.dir/simulator.cpp.o"
  "CMakeFiles/wormrt_sim.dir/simulator.cpp.o.d"
  "libwormrt_sim.a"
  "libwormrt_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wormrt_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
