file(REMOVE_RECURSE
  "libwormrt_route.a"
)
