file(REMOVE_RECURSE
  "CMakeFiles/wormrt_route.dir/dor.cpp.o"
  "CMakeFiles/wormrt_route.dir/dor.cpp.o.d"
  "CMakeFiles/wormrt_route.dir/ecube.cpp.o"
  "CMakeFiles/wormrt_route.dir/ecube.cpp.o.d"
  "CMakeFiles/wormrt_route.dir/path.cpp.o"
  "CMakeFiles/wormrt_route.dir/path.cpp.o.d"
  "libwormrt_route.a"
  "libwormrt_route.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wormrt_route.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
