# Empty compiler generated dependencies file for wormrt_route.
# This may be replaced when dependencies are built.
