# Empty dependencies file for wormrt_baselines.
# This may be replaced when dependencies are built.
