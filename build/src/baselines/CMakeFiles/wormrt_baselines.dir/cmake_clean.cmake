file(REMOVE_RECURSE
  "CMakeFiles/wormrt_baselines.dir/rm_bound.cpp.o"
  "CMakeFiles/wormrt_baselines.dir/rm_bound.cpp.o.d"
  "libwormrt_baselines.a"
  "libwormrt_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wormrt_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
