file(REMOVE_RECURSE
  "libwormrt_baselines.a"
)
