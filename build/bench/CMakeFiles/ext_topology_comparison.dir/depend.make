# Empty dependencies file for ext_topology_comparison.
# This may be replaced when dependencies are built.
