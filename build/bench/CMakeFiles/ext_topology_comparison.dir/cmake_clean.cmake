file(REMOVE_RECURSE
  "CMakeFiles/ext_topology_comparison.dir/ext_topology_comparison.cpp.o"
  "CMakeFiles/ext_topology_comparison.dir/ext_topology_comparison.cpp.o.d"
  "ext_topology_comparison"
  "ext_topology_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_topology_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
