# Empty compiler generated dependencies file for ext_traffic_patterns.
# This may be replaced when dependencies are built.
