file(REMOVE_RECURSE
  "CMakeFiles/ext_traffic_patterns.dir/ext_traffic_patterns.cpp.o"
  "CMakeFiles/ext_traffic_patterns.dir/ext_traffic_patterns.cpp.o.d"
  "ext_traffic_patterns"
  "ext_traffic_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_traffic_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
