# Empty compiler generated dependencies file for fig3_to_fig9_worked_examples.
# This may be replaced when dependencies are built.
