file(REMOVE_RECURSE
  "CMakeFiles/fig3_to_fig9_worked_examples.dir/fig3_to_fig9_worked_examples.cpp.o"
  "CMakeFiles/fig3_to_fig9_worked_examples.dir/fig3_to_fig9_worked_examples.cpp.o.d"
  "fig3_to_fig9_worked_examples"
  "fig3_to_fig9_worked_examples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_to_fig9_worked_examples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
