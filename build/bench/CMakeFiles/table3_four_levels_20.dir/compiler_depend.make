# Empty compiler generated dependencies file for table3_four_levels_20.
# This may be replaced when dependencies are built.
