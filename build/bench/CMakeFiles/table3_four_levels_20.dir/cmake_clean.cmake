file(REMOVE_RECURSE
  "CMakeFiles/table3_four_levels_20.dir/table3_four_levels_20.cpp.o"
  "CMakeFiles/table3_four_levels_20.dir/table3_four_levels_20.cpp.o.d"
  "table3_four_levels_20"
  "table3_four_levels_20.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_four_levels_20.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
