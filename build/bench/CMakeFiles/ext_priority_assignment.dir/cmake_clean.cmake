file(REMOVE_RECURSE
  "CMakeFiles/ext_priority_assignment.dir/ext_priority_assignment.cpp.o"
  "CMakeFiles/ext_priority_assignment.dir/ext_priority_assignment.cpp.o.d"
  "ext_priority_assignment"
  "ext_priority_assignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_priority_assignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
