# Empty dependencies file for ext_priority_assignment.
# This may be replaced when dependencies are built.
