file(REMOVE_RECURSE
  "CMakeFiles/priority_level_sweep.dir/priority_level_sweep.cpp.o"
  "CMakeFiles/priority_level_sweep.dir/priority_level_sweep.cpp.o.d"
  "priority_level_sweep"
  "priority_level_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/priority_level_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
