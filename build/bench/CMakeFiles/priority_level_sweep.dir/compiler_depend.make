# Empty compiler generated dependencies file for priority_level_sweep.
# This may be replaced when dependencies are built.
