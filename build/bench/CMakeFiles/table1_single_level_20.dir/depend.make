# Empty dependencies file for table1_single_level_20.
# This may be replaced when dependencies are built.
