file(REMOVE_RECURSE
  "CMakeFiles/table4_five_levels_20.dir/table4_five_levels_20.cpp.o"
  "CMakeFiles/table4_five_levels_20.dir/table4_five_levels_20.cpp.o.d"
  "table4_five_levels_20"
  "table4_five_levels_20.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_five_levels_20.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
