# Empty compiler generated dependencies file for table4_five_levels_20.
# This may be replaced when dependencies are built.
