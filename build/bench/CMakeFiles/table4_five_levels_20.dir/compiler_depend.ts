# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for table4_five_levels_20.
