file(REMOVE_RECURSE
  "CMakeFiles/table2_single_level_60.dir/table2_single_level_60.cpp.o"
  "CMakeFiles/table2_single_level_60.dir/table2_single_level_60.cpp.o.d"
  "table2_single_level_60"
  "table2_single_level_60.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_single_level_60.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
