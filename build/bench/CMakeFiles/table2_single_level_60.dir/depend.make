# Empty dependencies file for table2_single_level_60.
# This may be replaced when dependencies are built.
