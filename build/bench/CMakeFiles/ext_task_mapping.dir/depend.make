# Empty dependencies file for ext_task_mapping.
# This may be replaced when dependencies are built.
