file(REMOVE_RECURSE
  "CMakeFiles/ext_task_mapping.dir/ext_task_mapping.cpp.o"
  "CMakeFiles/ext_task_mapping.dir/ext_task_mapping.cpp.o.d"
  "ext_task_mapping"
  "ext_task_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_task_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
