
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_policy.cpp" "bench/CMakeFiles/ablation_policy.dir/ablation_policy.cpp.o" "gcc" "bench/CMakeFiles/ablation_policy.dir/ablation_policy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/wormrt_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/wormrt_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wormrt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/wormrt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/route/CMakeFiles/wormrt_route.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/wormrt_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wormrt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
