file(REMOVE_RECURSE
  "CMakeFiles/ablation_carryover.dir/ablation_carryover.cpp.o"
  "CMakeFiles/ablation_carryover.dir/ablation_carryover.cpp.o.d"
  "ablation_carryover"
  "ablation_carryover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_carryover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
