# Empty dependencies file for ablation_carryover.
# This may be replaced when dependencies are built.
