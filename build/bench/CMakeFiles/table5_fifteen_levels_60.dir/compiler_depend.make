# Empty compiler generated dependencies file for table5_fifteen_levels_60.
# This may be replaced when dependencies are built.
