file(REMOVE_RECURSE
  "CMakeFiles/table5_fifteen_levels_60.dir/table5_fifteen_levels_60.cpp.o"
  "CMakeFiles/table5_fifteen_levels_60.dir/table5_fifteen_levels_60.cpp.o.d"
  "table5_fifteen_levels_60"
  "table5_fifteen_levels_60.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_fifteen_levels_60.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
