# Empty compiler generated dependencies file for wormrt_bench_common.
# This may be replaced when dependencies are built.
