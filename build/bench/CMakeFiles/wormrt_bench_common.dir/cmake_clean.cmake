file(REMOVE_RECURSE
  "CMakeFiles/wormrt_bench_common.dir/common/experiment.cpp.o"
  "CMakeFiles/wormrt_bench_common.dir/common/experiment.cpp.o.d"
  "libwormrt_bench_common.a"
  "libwormrt_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wormrt_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
