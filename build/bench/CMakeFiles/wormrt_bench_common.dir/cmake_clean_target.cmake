file(REMOVE_RECURSE
  "libwormrt_bench_common.a"
)
