# Empty compiler generated dependencies file for ext_song_vc_cost.
# This may be replaced when dependencies are built.
