file(REMOVE_RECURSE
  "CMakeFiles/ext_song_vc_cost.dir/ext_song_vc_cost.cpp.o"
  "CMakeFiles/ext_song_vc_cost.dir/ext_song_vc_cost.cpp.o.d"
  "ext_song_vc_cost"
  "ext_song_vc_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_song_vc_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
