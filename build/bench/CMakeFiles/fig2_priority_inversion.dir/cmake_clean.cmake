file(REMOVE_RECURSE
  "CMakeFiles/fig2_priority_inversion.dir/fig2_priority_inversion.cpp.o"
  "CMakeFiles/fig2_priority_inversion.dir/fig2_priority_inversion.cpp.o.d"
  "fig2_priority_inversion"
  "fig2_priority_inversion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_priority_inversion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
