# Empty dependencies file for fig2_priority_inversion.
# This may be replaced when dependencies are built.
